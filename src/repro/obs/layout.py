"""``repro layout`` — measure, rewrite, and re-measure the disk layout.

For each requested scheme the runner:

1. builds a **fresh** environment (never the shared experiment cache —
   the rewrite mutates the V-page file in place);
2. replays a walkthrough session, recording per-frame I/O deltas and a
   canonical signature of every query's LoD selection;
3. derives the cell tour from the session's own cell trace
   (:func:`repro.storage.layout.affinity_graph` +
   :func:`~repro.storage.layout.tour_order`), rewrites the scheme, and
   replays again;
4. repeats both replays on a compressed (packed delta codec) build.

The report asserts the structural guarantees the benchmark gates on:
LoD selections are frame-for-frame identical across all four variants
(same `visibility_digest`, same selection digest), back seeks strictly
drop after the rewrite, and V-page bytes strictly drop under
compression while heavy (model) I/O stays exactly equal.

Everything here is a pure function of the inputs — no wall clock, no
ambient randomness — so two runs produce byte-identical reports.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.hdov_tree import HDoVEnvironment, build_environment
from repro.core.search import HDoVSearch
from repro.errors import ExperimentError
from repro.scene.city import generate_city
from repro.storage.disk import IOStats
from repro.storage.layout import (RewriteReport, affinity_graph,
                                  rewrite_scheme, tour_order)
from repro.visibility.cells import CellGrid
from repro.visibility.persist import visibility_digest
from repro.visibility.precompute import precompute_visibility
from repro.walkthrough.session import Session, make_session

#: Schemes the rewriter supports end to end.  The horizontal scheme can
#: carry a layout remap too, but its all-cells-interleaved page formula
#: is the pathology the paper replaces, so the CLI does not measure it.
DEFAULT_SCHEMES: Tuple[str, ...] = ("vertical", "indexed-vertical")


@dataclass(frozen=True)
class ReplayResult:
    """One measured replay: I/O totals plus the selection digest."""

    frames: int
    queries: int
    light: IOStats
    heavy: IOStats
    selection_digest: str
    per_frame_back_seeks: float


def _selection_signature(result: object) -> List[object]:
    """Canonical, JSON-stable form of one query's LoD selection."""
    objects = sorted((o.object_id, repr(o.fraction))
                     for o in result.objects)        # type: ignore[attr-defined]
    internals = sorted((i.node_offset, repr(i.fraction))
                       for i in result.internals)    # type: ignore[attr-defined]
    return [objects, internals]


def _replay(env: HDoVEnvironment, scheme_name: str, path: Session,
            eta: float) -> ReplayResult:
    """Walk ``path`` once, querying on cell change, from cold state."""
    scheme = env.scheme(scheme_name)
    scheme.reset_runtime_state()
    env.reset_stats()
    searcher = HDoVSearch(env, scheme_name)
    signatures: List[object] = []
    back_seeks_per_frame: List[int] = []
    queries = 0
    last_cell: Optional[int] = None
    for waypoint in path:
        cell_id = env.grid.cell_of_point(waypoint.position_array())
        snap = env.snapshot()
        if cell_id != last_cell:
            result = searcher.query_cell(cell_id, eta)
            queries += 1
            signatures.append([cell_id, _selection_signature(result)])
            last_cell = cell_id
        light, heavy = env.delta(snap)
        back_seeks_per_frame.append(light.back_seeks + heavy.back_seeks)
    digest = hashlib.sha256(
        json.dumps(signatures, separators=(",", ":")).encode()).hexdigest()
    light_total = env.light_stats.snapshot()
    heavy_total = env.heavy_stats.snapshot()
    return ReplayResult(
        frames=path.num_frames, queries=queries,
        light=light_total, heavy=heavy_total,
        selection_digest=digest,
        per_frame_back_seeks=(
            sum(back_seeks_per_frame) / len(back_seeks_per_frame)
            if back_seeks_per_frame else 0.0),
    )


def _replay_dict(replay: ReplayResult) -> Dict[str, object]:
    def stats(io: IOStats) -> Dict[str, float]:
        return {
            "reads": io.reads,
            "seeks": io.seeks,
            "back_seeks": io.back_seeks,
            "forward_seeks": io.forward_seeks,
            "sequential_reads": io.sequential_reads,
            "bytes_read": io.bytes_read,
            "simulated_ms": round(io.simulated_ms, 6),
        }
    return {
        "frames": replay.frames,
        "queries": replay.queries,
        "light": stats(replay.light),
        "heavy": stats(replay.heavy),
        "back_seeks_per_frame": round(replay.per_frame_back_seeks, 6),
        "selection_digest": replay.selection_digest,
    }


def _rewrite_dict(report: RewriteReport) -> Dict[str, object]:
    return {
        "cells": report.cells,
        "pointers_remapped": report.pointers_remapped,
        "pages_moved": report.pages_moved,
    }


def run_layout(*, scale: str = "small", session: int = 4,
               eta: float = 0.001, frames: Optional[int] = None,
               schemes: Sequence[str] = DEFAULT_SCHEMES
               ) -> Dict[str, object]:
    """Measure the layout rewrite and V-page compression; see module doc.

    Returns the JSON-ready report; ``report["ok"]`` is the conjunction
    of every structural check.
    """
    # Imported here: the library layers must not depend on the
    # experiment drivers at import time.
    from repro.experiments.config import get_scale

    for name in schemes:
        if name not in DEFAULT_SCHEMES:
            raise ExperimentError(
                f"layout rewriting measures {DEFAULT_SCHEMES}, "
                f"not {name!r}")

    experiment = get_scale(scale)
    scene = generate_city(experiment.city)
    grid = CellGrid.covering(scene.bounds(), experiment.cell_size)
    visibility = precompute_visibility(
        scene, grid, resolution=experiment.hdov.dov_resolution,
        samples_per_cell=experiment.hdov.samples_per_cell)
    vis_digest = visibility_digest(visibility)

    num_frames = frames if frames is not None else experiment.session_frames
    path = make_session(session, scene.bounds(), num_frames=num_frames,
                        street_pitch=experiment.city.pitch)
    cell_trace = [grid.cell_of_point(wp.position_array())
                  for wp in path]
    neighbors = {cid: grid.neighbors(cid) for cid in grid.cell_ids()}
    tour = tour_order(list(grid.cell_ids()),
                      affinity_graph(cell_trace, neighbors))

    def fresh_env(scheme_name: str, compress: bool) -> HDoVEnvironment:
        hdov = replace(experiment.hdov, schemes=(scheme_name,),
                       compress_vpages=compress)
        return build_environment(scene, grid, hdov, visibility=visibility)

    scheme_reports: Dict[str, Dict[str, object]] = {}
    all_ok = True
    for scheme_name in schemes:
        env = fresh_env(scheme_name, compress=False)
        baseline = _replay(env, scheme_name, path, eta)
        rewrite = rewrite_scheme(env.scheme(scheme_name), tour)
        rewritten = _replay(env, scheme_name, path, eta)

        env_packed = fresh_env(scheme_name, compress=True)
        compressed = _replay(env_packed, scheme_name, path, eta)
        compression = env_packed.scheme(scheme_name).codec \
            .compression_stats()
        rewrite_packed = rewrite_scheme(env_packed.scheme(scheme_name),
                                        tour)
        compressed_rewritten = _replay(env_packed, scheme_name, path, eta)

        variants = (baseline, rewritten, compressed, compressed_rewritten)
        checks = {
            # Same pixels: every variant selected the same LoDs on
            # every frame, so fidelity is untouched by construction.
            "selections_identical": len(
                {v.selection_digest for v in variants}) == 1,
            # ... which must also show up as *exactly* equal heavy
            # (model) I/O — the models fetched are a function of the
            # selections alone.
            "heavy_io_identical": len(
                {(v.heavy.reads, v.heavy.bytes_read, v.heavy.seeks)
                 for v in variants}) == 1,
            # The rewrite's point: strictly fewer back seeks.
            "back_seeks_improved":
                rewritten.light.back_seeks < baseline.light.back_seeks,
            # Compression's point: strictly fewer V-page (light) bytes.
            "light_bytes_improved":
                compressed.light.bytes_read < baseline.light.bytes_read,
            "total_bytes_improved":
                (compressed.light.bytes_read + compressed.heavy.bytes_read)
                < (baseline.light.bytes_read + baseline.heavy.bytes_read),
        }
        all_ok = all_ok and all(checks.values())
        scheme_reports[scheme_name] = {
            "baseline": _replay_dict(baseline),
            "rewritten": dict(_replay_dict(rewritten),
                              rewrite=_rewrite_dict(rewrite)),
            "compressed": dict(_replay_dict(compressed),
                               compression=compression),
            "compressed_rewritten": dict(
                _replay_dict(compressed_rewritten),
                rewrite=_rewrite_dict(rewrite_packed)),
            "checks": checks,
        }

    return {
        "layout": {
            "scale": scale,
            "session": path.name,
            "eta": eta,
            "frames": num_frames,
            "cells": grid.num_cells,
            "tour_head": list(tour[:16]),
        },
        "visibility_digest": vis_digest,
        "schemes": scheme_reports,
        "ok": all_ok,
    }
