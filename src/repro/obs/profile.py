"""``repro profile`` — an instrumented walkthrough with a JSON report.

Builds a fresh environment against a *fresh* metrics registry and an
enabled trace recorder, replays a walkthrough session through the VISUAL
system, and assembles a report answering "where do the simulated
milliseconds go":

* per-phase wall-clock (build vs walkthrough, plus the span summary of
  search / flip_to_cell / per-frame work);
* per-file I/O counters (reads, writes, seeks, sequential, bytes,
  simulated ms) straight from the metrics registry;
* a **reconciliation** of those per-file counters against the
  environment's :class:`~repro.storage.disk.IOStats` totals — the two
  accounting paths are independent, so agreement is evidence neither is
  miscounting (the check benchmarks and the regression suite assert on);
* cache behaviour (delta-search fetch/skip, scheme flips, prefetches)
  and traversal decision counts (pruned / terminated / recursed).

The report is plain dict/list/scalar data, ready for ``json.dump``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.hdov_tree import HDoVEnvironment, build_environment
from repro.obs import names
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.trace import TraceRecorder, span, use_tracer
from repro.scene.city import generate_city
from repro.storage.disk import IOStats
from repro.storage.pagedfile import PagedFile
from repro.visibility.cells import CellGrid
from repro.walkthrough.session import make_session
from repro.walkthrough.visual import VisualSystem

#: Relative tolerance for reconciling floating simulated-ms sums;
#: integer counters must match exactly.
_MS_RTOL = 1e-9


def _iostats_dict(stats: IOStats) -> Dict[str, float]:
    return {
        "reads": stats.reads,
        "writes": stats.writes,
        "seeks": stats.seeks,
        "back_seeks": stats.back_seeks,
        "forward_seeks": stats.forward_seeks,
        "sequential_reads": stats.sequential_reads,
        "bytes_read": stats.bytes_read,
        "bytes_written": stats.bytes_written,
        "simulated_ms": stats.simulated_ms,
    }


def _metric_sum(registry: MetricsRegistry, name: str) -> float:
    """Total of one counter across all its label series (0.0 if none)."""
    return sum(inst.value for inst in registry.series(name).values())


def _environment_files(env: HDoVEnvironment) -> List[PagedFile]:
    """Every paged file the environment charges I/O through."""
    files = [env.node_store.pfile, env.object_store.pfile]
    for scheme in env.schemes.values():
        files.append(scheme.vpage_file)
        if scheme.index_file is not None:
            files.append(scheme.index_file)
    return files


def _per_file_io(registry: MetricsRegistry, baseline: Dict[str, float],
                 files: List[PagedFile]) -> Dict[str, Dict[str, float]]:
    """Registry counter deltas since ``baseline``, grouped per file."""
    delta = registry.delta(baseline)
    metric_of = {
        names.PAGEDFILE_READS: "reads",
        names.PAGEDFILE_WRITES: "writes",
        names.PAGEDFILE_SEEKS: "seeks",
        names.PAGEDFILE_BACK_SEEKS: "back_seeks",
        names.PAGEDFILE_FORWARD_SEEKS: "forward_seeks",
        names.PAGEDFILE_SEQUENTIAL: "sequential_reads",
        names.PAGEDFILE_BYTES_READ: "bytes_read",
        names.PAGEDFILE_BYTES_WRITTEN: "bytes_written",
        names.PAGEDFILE_SIMULATED_MS: "simulated_ms",
    }
    out: Dict[str, Dict[str, float]] = {}
    for pfile in files:
        row = {field: 0.0 for field in metric_of.values()}
        for metric, field in metric_of.items():
            row[field] = delta.get(f'{metric}{{file="{pfile.name}"}}', 0.0)
        out[pfile.name] = row
    return out


def reconcile(per_file: Dict[str, Dict[str, float]],
              files: List[PagedFile],
              stats_by_name: Dict[str, IOStats]) -> Dict[str, object]:
    """Check per-file registry counters against ``IOStats`` totals.

    Files sharing one ``IOStats`` (the light-weight group) are summed
    before comparing.  Returns ``{"ok": bool, "groups": {...}}`` with a
    per-group breakdown of both sides.
    """
    name_of_stats = {id(stats): name
                     for name, stats in stats_by_name.items()}
    groups: Dict[int, Dict[str, object]] = {}
    for pfile in files:
        group = groups.setdefault(id(pfile.stats), {
            "stats": name_of_stats.get(id(pfile.stats), "unknown"),
            "files": [],
            "counted": {k: 0.0 for k in _iostats_dict(IOStats())},
            "expected": _iostats_dict(pfile.stats),
        })
        group["files"].append(pfile.name)
        for field, value in per_file[pfile.name].items():
            group["counted"][field] += value

    ok = True
    for group in groups.values():
        for field, expected in group["expected"].items():
            counted = group["counted"][field]
            if field == "simulated_ms":
                tolerance = _MS_RTOL * max(abs(expected), 1.0)
                if abs(counted - expected) > tolerance:
                    ok = False
            elif counted != expected:
                ok = False
    return {"ok": ok, "groups": list(groups.values())}


def run_profile(*, scale: str = "small", session: int = 1,
                eta: float = 0.001, frames: Optional[int] = None,
                scheme: Optional[str] = None,
                compress: bool = False,
                include_spans: bool = False) -> Dict[str, object]:
    """Run one instrumented walkthrough; returns the JSON-ready report.

    Parameters
    ----------
    scale:
        Experiment scale name (``small`` / ``medium`` / ``large``).
    session:
        Motion pattern 1, 2, 3 or 4 (Section 5.4's recorded sessions
        plus the loop circuit the layout rewriter targets).
    eta:
        DoV threshold for the VISUAL system.
    frames:
        Frame count override (defaults to the scale's session length).
    scheme:
        Storage scheme to walk (defaults to the scale's only scheme).
    compress:
        Build with the packed delta V-page codec (``repro profile
        --compress``); the ``layout`` section then shows a real
        compression ratio instead of 1.0.
    include_spans:
        Also embed the full span list (one record per frame/query) in
        the report, not just the per-name summary.
    """
    # Imported here: repro.experiments pulls in every experiment driver,
    # which the library layers must not depend on at import time.
    from dataclasses import replace

    from repro.experiments.config import get_scale

    experiment = get_scale(scale)
    hdov = experiment.hdov
    if compress:
        hdov = replace(hdov, compress_vpages=True)
    registry = MetricsRegistry()
    tracer = TraceRecorder(enabled=True)
    with use_registry(registry), use_tracer(tracer):
        with span("build") as build_span:
            scene = generate_city(experiment.city)
            grid = CellGrid.covering(scene.bounds(), experiment.cell_size)
            env = build_environment(scene, grid, hdov)
            if build_span is not None:
                build_span.attrs.update(objects=len(scene),
                                        nodes=env.node_store.num_nodes,
                                        cells=grid.num_cells)
        # build_environment resets IOStats after preprocessing; snapshot
        # the registry at the same point so both accounting paths cover
        # exactly the walkthrough that follows.
        baseline = registry.snapshot()

        num_frames = frames if frames is not None \
            else experiment.session_frames
        path = make_session(session, scene.bounds(), num_frames=num_frames,
                            street_pitch=experiment.city.pitch)
        system = VisualSystem(
            env, eta=eta, scheme=scheme,
            cache_budget_bytes=experiment.visual_cache_budget_bytes)
        with span("walkthrough", session=path.name):
            report = system.run(path)

        files = _environment_files(env)
        per_file = _per_file_io(registry, baseline, files)
        reconciliation = reconcile(per_file, files, {
            "light": env.light_stats, "heavy": env.heavy_stats})

        frame_times = report.frame_times()
        queried_frames = sum(1 for f in report.frames if f.total_ios > 0)
        active_scheme = system.delta.search.scheme
        summary = tracer.summarize()

        result: Dict[str, object] = {
            "profile": {
                "scale": scale,
                "session": path.name,
                "eta": eta,
                "scheme": active_scheme.name,
                "frames": num_frames,
                "compress": compress,
            },
            "scene": {
                "objects": len(scene),
                "polygons": scene.total_polygons(),
                "model_bytes": scene.total_bytes(),
                "tree_nodes": env.node_store.num_nodes,
                "tree_height": env.tree.height,
                "cells": grid.num_cells,
            },
            "phases": {
                name: {
                    "wall_ms": round(agg["total_ms"], 3),
                    "count": int(agg["count"]),
                }
                for name, agg in summary.items()
            },
            "frames": {
                "count": len(report.frames),
                "queried": queried_frames,
                "avg_frame_ms": sum(frame_times) / len(frame_times),
                "max_frame_ms": max(frame_times),
                "avg_search_ms": report.avg_search_ms(),
                "avg_query_search_ms": report.avg_query_search_ms(),
                "avg_ios": report.avg_ios(),
                "peak_resident_bytes": report.peak_resident_bytes(),
            },
            "io": {
                "files": per_file,
                "totals": {
                    "light": _iostats_dict(env.light_stats),
                    "heavy": _iostats_dict(env.heavy_stats),
                },
                "reconciled": reconciliation["ok"],
                "reconciliation": reconciliation["groups"],
                # Crash-consistency counters (PR 8).  All zero in a
                # plain walkthrough — the environment's files are not
                # journaled — but any journaled file opened inside the
                # profiled registry shows up here, and a nonzero
                # replay/truncation count is the profile-level signal
                # that the run started from a crashed state.
                "journal": {
                    "records": _metric_sum(registry,
                                           names.JOURNAL_RECORDS),
                    "commits": _metric_sum(registry,
                                           names.JOURNAL_COMMITS),
                    "recovery_pages_replayed": _metric_sum(
                        registry, names.RECOVERY_PAGES_REPLAYED),
                    "recovery_tail_truncations": _metric_sum(
                        registry, names.RECOVERY_TAIL_TRUNCATIONS),
                },
            },
            # Disk-layout view of the same run: the seek *direction*
            # split per file (back seeks are what the layout rewriter
            # attacks) and the V-page codec's byte accounting.  The
            # split is internally checked (back + forward == seeks, per
            # file) on top of the IOStats reconciliation above.
            "layout": {
                "seeks": {
                    fname: {
                        "seeks": row["seeks"],
                        "back_seeks": row["back_seeks"],
                        "forward_seeks": row["forward_seeks"],
                        "split_ok": (row["back_seeks"]
                                     + row["forward_seeks"]
                                     == row["seeks"]),
                    }
                    for fname, row in per_file.items()
                },
                "codecs": {
                    scheme_name: dict(
                        env_scheme.codec.compression_stats(),
                        vpage_bytes=(env_scheme.storage_breakdown()
                                     .vpage_bytes),
                    )
                    for scheme_name, env_scheme in env.schemes.items()
                },
            },
            "cache": {
                "delta_search": {
                    "fetches": system.delta.fetches,
                    "skipped": system.delta.skipped,
                    "evictions": system.delta.evictions,
                    "resident_bytes": system.delta.resident_bytes,
                },
                "scheme": {
                    "flips": active_scheme.flips,
                    "prefetched_flips": active_scheme.prefetched_flips,
                },
            },
            "search": {
                "queries": registry.value(names.SEARCH_QUERIES,
                                          scheme=active_scheme.name),
                "nodes_read": registry.value(names.SEARCH_NODES_READ,
                                             scheme=active_scheme.name),
                "vpages_read": registry.value(names.SEARCH_VPAGES_READ,
                                              scheme=active_scheme.name),
                "pruned": registry.value(names.SEARCH_PRUNED,
                                         scheme=active_scheme.name),
                "terminated": registry.value(names.SEARCH_TERMINATED,
                                             scheme=active_scheme.name),
                "recursed": registry.value(names.SEARCH_RECURSED,
                                           scheme=active_scheme.name),
            },
            "metrics": registry.delta(baseline),
        }
        if include_spans:
            result["spans"] = tracer.to_dicts()
        return result
