"""Process-wide metrics registry: counters, gauges, histograms with labels.

The storage, search and walkthrough layers mirror their accounting into a
:class:`MetricsRegistry` so experiments and benchmarks can observe *where*
simulated milliseconds and page I/Os go without threading stats objects
through every call site.  Instruments are cheap handle objects fetched
once at construction time (``reg.counter(name, **labels)``) and bumped on
the hot path with a plain attribute add, so instrumentation does not
distort the timings it reports.

Two access patterns are supported:

* **absolute** — ``registry.collect()`` returns every value keyed by a
  Prometheus-style ``name{label="value"}`` string;
* **delta** — ``snap = registry.snapshot(); ...; registry.delta(snap)``
  returns only what changed, which is how benchmarks assert on the I/O of
  a single operation against a long-lived shared environment.

A process-wide default registry (:func:`get_registry`) is what the
library instruments bind to; :func:`use_registry` swaps in a fresh one
for the duration of a profiling run so its counters start from zero.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.concurrency.witness import wrap_lock
from repro.errors import ObservabilityError

#: Canonical label form: sorted ``(key, value)`` pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_series(name: str, labels: LabelKey) -> str:
    """``name{a="x",b="y"}`` — the JSON/report key of one series."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def _reset(self) -> None:
        self.value = 0.0

    def _values(self) -> Dict[str, float]:
        return {"": self.value}


class Gauge:
    """Value that can move both ways (resident bytes, pool occupancy)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def _reset(self) -> None:
        self.value = 0.0

    def _values(self) -> Dict[str, float]:
        return {"": self.value}


class Histogram:
    """Streaming summary of an observed distribution.

    Tracks count/sum/min/max — enough for the mean and range breakdowns
    the profile report prints, without storing samples.
    """

    __slots__ = ("count", "sum", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _reset(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def _values(self) -> Dict[str, float]:
        out = {"_count": float(self.count), "_sum": self.sum}
        if self.count:
            out["_min"] = self.min
            out["_max"] = self.max
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named, labelled instruments with snapshot/delta support.

    One metric *name* owns one instrument kind; each distinct label set
    under that name is an independent series.  Handles returned by
    :meth:`counter` / :meth:`gauge` / :meth:`histogram` stay valid across
    :meth:`reset` (values are zeroed, objects are kept), so hot paths can
    cache them once.
    """

    #: Lattice level of ``_lock`` (see repro.concurrency.order): the
    #: bottom — instrument creation may happen under any other lock, and
    #: nothing is ever acquired while this lock is held.  The instrument
    #: hot path (``.inc()``) is lockless and does not touch it.
    LOCK_LEVEL = "obs.registry"

    def __init__(self) -> None:
        # RLock, not Lock: the lock-order witness counts acquisitions of
        # this very lock by creating a counter *in this registry*, which
        # re-enters ``_instrument`` on the same thread.
        self._lock = wrap_lock(threading.RLock(),
                               level=MetricsRegistry.LOCK_LEVEL,
                               name="metrics-registry")
        self._metrics: Dict[Tuple[str, LabelKey], object] = {}
        self._kind_of: Dict[str, str] = {}

    # -- instrument access -------------------------------------------------

    def _instrument(self, kind: str, name: str,
                    labels: Dict[str, object]) -> Any:
        if not name:
            raise ObservabilityError("metric name must be non-empty")
        key = (name, _label_key(labels))
        with self._lock:
            existing_kind = self._kind_of.get(name)
            if existing_kind is not None and existing_kind != kind:
                raise ObservabilityError(
                    f"metric {name!r} is a {existing_kind}, not a {kind}")
            instrument = self._metrics.get(key)
            if instrument is None:
                instrument = _KINDS[kind]()
                self._metrics[key] = instrument
                self._kind_of[name] = kind
            return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        return self._instrument("counter", name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._instrument("gauge", name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._instrument("histogram", name, labels)

    # -- reading -----------------------------------------------------------

    def value(self, name: str, **labels: object) -> float:
        """Current value of one counter/gauge series (0.0 if never used)."""
        key = (name, _label_key(labels))
        instrument = self._metrics.get(key)
        if instrument is None:
            return 0.0
        if isinstance(instrument, Histogram):
            raise ObservabilityError(
                f"{name!r} is a histogram; read .collect() instead")
        return instrument.value

    def series(self, name: str) -> Dict[LabelKey, object]:
        """All instruments registered under ``name``, keyed by labels."""
        return {labels: inst for (n, labels), inst in self._metrics.items()
                if n == name}

    def collect(self) -> Dict[str, float]:
        """Flat ``{formatted series name: value}`` view of everything."""
        out: Dict[str, float] = {}
        for (name, labels), instrument in sorted(self._metrics.items()):
            for suffix, value in instrument._values().items():
                out[format_series(name + suffix, labels)] = value
        return out

    def snapshot(self) -> Dict[str, float]:
        """A point-in-time copy of :meth:`collect` for later deltas."""
        return self.collect()

    def delta(self, since: Dict[str, float]) -> Dict[str, float]:
        """Changed series since ``since`` (new series count from zero).

        Histogram ``_min``/``_max`` series are not meaningful as
        differences and are omitted.
        """
        out: Dict[str, float] = {}
        for key, value in self.collect().items():
            if key.split("{", 1)[0].endswith(("_min", "_max")):
                continue
            diff = value - since.get(key, 0.0)
            if diff != 0.0:
                out[key] = diff
        return out

    def reset(self) -> None:
        """Zero every instrument, keeping cached handles valid."""
        with self._lock:
            for instrument in self._metrics.values():
                instrument._reset()

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return (f"MetricsRegistry(series={len(self._metrics)}, "
                f"names={len(self._kind_of)})")


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry library instruments bind to."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one.

    Instruments created *before* the swap keep writing to the registry
    they were created against — swap before building the objects you
    want observed.
    """
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None
                 ) -> Iterator[MetricsRegistry]:
    """Scoped :func:`set_registry`; yields the active registry."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
