"""The registry of metric names — the only place series names may live.

Every metric name passed to ``MetricsRegistry.counter()`` / ``gauge()`` /
``histogram()`` / ``value()`` must be a constant imported from this
module.  The lint rule RPR002 (``repro lint``) enforces it: a literal
string at an instrument call site is a violation, because a typo there
does not fail — it silently creates a *new* time series and the report
that should have shown the real one reads zero.  Centralising the names
also gives the unused-name check a ground truth: every constant defined
here must be referenced somewhere in the library, so dead series are
removed instead of lingering in dashboards.

Naming convention (Prometheus style):

* counters end in ``_total``;
* gauges name the quantity they sample (``..._pages``);
* histograms name the distribution (``search_results``).
"""

from __future__ import annotations

from typing import Dict

# -- repro.storage.pagedfile: one series set per file label -----------------

PAGEDFILE_READS = "pagedfile_reads_total"
PAGEDFILE_WRITES = "pagedfile_writes_total"
PAGEDFILE_SEEKS = "pagedfile_seeks_total"
PAGEDFILE_BACK_SEEKS = "pagedfile_back_seeks_total"
PAGEDFILE_FORWARD_SEEKS = "pagedfile_forward_seeks_total"
PAGEDFILE_SEQUENTIAL = "pagedfile_sequential_total"
PAGEDFILE_BYTES_READ = "pagedfile_bytes_read_total"
PAGEDFILE_BYTES_WRITTEN = "pagedfile_bytes_written_total"
PAGEDFILE_SIMULATED_MS = "pagedfile_simulated_ms_total"

# -- repro.storage.buffer: one series set per pool label --------------------

BUFFERPOOL_HITS = "bufferpool_hits_total"
BUFFERPOOL_MISSES = "bufferpool_misses_total"
BUFFERPOOL_EVICTIONS = "bufferpool_evictions_total"
BUFFERPOOL_PINS = "bufferpool_pins_total"
BUFFERPOOL_UNPINS = "bufferpool_unpins_total"
BUFFERPOOL_WRITEBACKS = "bufferpool_writebacks_total"
BUFFERPOOL_RESIDENT_PAGES = "bufferpool_resident_pages"
BUFFERPOOL_COALESCED = "bufferpool_coalesced_total"
BUFFERPOOL_PREFETCH_ISSUED = "bufferpool_prefetch_issued_total"
BUFFERPOOL_PREFETCH_USEFUL = "bufferpool_prefetch_useful_total"
BUFFERPOOL_PREFETCH_WASTED = "bufferpool_prefetch_wasted_total"

# -- repro.storage.replacement: policy events, per pool + policy label ------

REPLACEMENT_PROMOTIONS = "replacement_promotions_total"
REPLACEMENT_GHOST_HITS = "replacement_ghost_hits_total"

# -- repro.storage.pageio: cross-layer page traffic by component ------------

PAGEIO_READS = "pageio_reads_total"
PAGEIO_WRITES = "pageio_writes_total"

# -- repro.storage.retry / faults: resilience events, labelled by file ------

PAGEIO_RETRIES = "pageio_retries_total"
PAGEIO_GIVEUPS = "pageio_giveups_total"
PAGES_CORRUPT = "pages_corrupt_total"

# -- repro.storage.journal / recovery: crash consistency, labelled by file --

JOURNAL_RECORDS = "journal_records_total"
JOURNAL_COMMITS = "journal_commits_total"
RECOVERY_PAGES_REPLAYED = "recovery_pages_replayed_total"
RECOVERY_TAIL_TRUNCATIONS = "recovery_tail_truncations_total"
CRASHES_INJECTED = "crashes_injected_total"

# -- repro.storage.vpagecodec: versioned V-page codec, per scheme label -----

VPAGE_RECORDS_SELF = "vpage_records_self_total"
VPAGE_RECORDS_DELTA = "vpage_records_delta_total"
VPAGE_RAW_BYTES = "vpage_raw_bytes_total"
VPAGE_ENCODED_BYTES = "vpage_encoded_bytes_total"

# -- repro.storage.layout: seek-optimal rewriter, labelled by file ----------

LAYOUT_REWRITES = "layout_rewrites_total"
LAYOUT_PAGES_MOVED = "layout_pages_moved_total"

# -- repro.core.search: one series set per scheme label ---------------------

SEARCH_QUERIES = "search_queries_total"
SEARCH_NODES_READ = "search_nodes_read_total"
SEARCH_VPAGES_READ = "search_vpages_read_total"
SEARCH_PRUNED = "search_pruned_total"
SEARCH_TERMINATED = "search_terminated_total"
SEARCH_RECURSED = "search_recursed_total"
SEARCH_RESULTS = "search_results"

# -- repro.core.schemes: one series set per scheme label --------------------

SCHEME_FLIPS = "scheme_flips_total"
SCHEME_PREFETCHED_FLIPS = "scheme_prefetched_flips_total"
SCHEME_PREFETCHES = "scheme_prefetches_total"
SCHEME_WARM_EVICTIONS = "scheme_warm_evictions_total"

# -- repro.walkthrough: degradation accounting ------------------------------

FRAMES_DEGRADED = "frames_degraded_total"

# -- repro.serving: multi-session walkthrough service -----------------------

SERVING_SESSIONS = "serving_sessions_total"
SERVING_FRAMES = "serving_frames_total"
SERVING_ROUNDS = "serving_rounds_total"
SERVING_OVERLOAD_DEGRADED = "serving_overload_degraded_total"
SERVING_ADMISSION_WAITS = "serving_admission_waits_total"
SERVING_ACTIVE_SESSIONS = "serving_active_sessions"

# -- repro.serving.http: network front-end, one series set per route --------

HTTP_REQUESTS = "http_requests_total"
HTTP_ERRORS = "http_errors_total"
HTTP_LATENCY_MS = "http_request_latency_ms"

# -- repro.serving.loadgen: synthetic walkthrough traffic -------------------

TRAFFIC_SESSIONS = "traffic_sessions_total"
TRAFFIC_SESSIONS_SHED = "traffic_sessions_shed_total"
TRAFFIC_FRAMES = "traffic_frames_total"
TRAFFIC_REQUESTS = "traffic_requests_total"

# -- repro.concurrency.witness: lock-order witness, one series per level ----

LOCK_ACQUISITIONS = "lock_acquisitions_total"
LOCK_ORDER_VIOLATIONS = "lock_order_violations_total"

# -- repro.visibility.precompute: offline DoV pipeline ----------------------

PRECOMPUTE_CELLS = "precompute_cells_total"
PRECOMPUTE_CELLS_CACHED = "precompute_cells_cached_total"
PRECOMPUTE_RAYS = "precompute_rays_total"


def registered_names() -> Dict[str, str]:
    """``{constant name: series name}`` for every registered metric."""
    return {key: value for key, value in globals().items()
            if key.isupper() and isinstance(value, str)}
