"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro list
    python -m repro run table2 [--scale small|medium|large]
    python -m repro run fig7 fig8 table3
    python -m repro run all --scale small
    python -m repro profile [--scale small] [--session 1] [--eta 0.001]
    python -m repro chaos [--plan aggressive] [--seed 0] [--list-plans]
    python -m repro layout [--scale small] [--session 4] [--output FILE]
    python -m repro crash [--seed 0] [--txns 5] [--output FILE]
    python -m repro precompute [--workers 4] [--cache-dir DIR] [--resume]
    python -m repro serve [--sessions 8] [--workers 4] [--seed 7]
    python -m repro traffic [--sessions 200] [--seed 0] [--arrival-rate 50]

``run`` prints the same rows/series the paper reports (see
EXPERIMENTS.md for the paper-vs-measured comparison); ``profile`` runs
one instrumented walkthrough and emits a JSON report of where the
simulated milliseconds and page I/Os go (see README, "Profiling");
``chaos`` replays a session under a named fault plan and reports frames
survived, degradations, retries, and the fidelity delta (see README,
"Chaos testing"); ``crash`` sweeps a deterministic crash-point matrix
over every I/O boundary of a journaled write workload — including the
boundaries inside recovery itself — and fails if any recovered state
breaks atomicity or recovery is not idempotent (see README, "Crash
recovery"); ``precompute`` runs the batched/parallel per-cell DoV
pipeline with an optional resumable cache and emits a JSON summary whose
``digest`` field fingerprints the resulting table bit-for-bit (see
README, "Precompute"); ``serve`` runs N concurrent walkthrough sessions
against one tree through a shared buffer pool and emits a deterministic
aggregate JSON report (see README, "Serving"); ``traffic`` offers a
seeded Poisson stream of walkthrough sessions to the HTTP front-end and
reports shed rate, frame-latency percentiles, and per-route request
stats, with the machine-independent sections byte-identical for a fixed
seed (see README, "Traffic").
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict

from repro.experiments import (run_figure7, run_figure8, run_figure9,
                               run_figure10a, run_figure10b, run_figure11,
                               run_figure12, run_memory_comparison,
                               run_table2, run_table3)
from repro.experiments.ablations import (run_flip_scaling, run_nvo_ablation,
                                         run_split_ablation)
from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.experiments.extensions import (run_node_cache_sweep,
                                          run_prefetch_extension,
                                          run_priority_extension)
from repro.experiments.config import get_scale

#: Experiment id -> (description, runner taking a scale).
EXPERIMENTS: Dict[str, tuple] = {
    "table2": ("storage space of the three schemes",
               lambda scale: run_table2(scale)),
    "fig7": ("search time vs eta (all schemes + naive)",
             lambda scale: run_figure7(scale)),
    "fig8": ("disk I/Os vs eta (total and light-weight)",
             lambda scale: run_figure8(scale)),
    "fig9": ("scalability over the 400MB-1.6GB dataset series",
             lambda scale: run_figure9(num_queries=30, dov_resolution=16,
                                       cell_size=120.0)),
    "fig10a": ("frame time: VISUAL vs REVIEW",
               lambda scale: run_figure10a(scale)),
    "fig10b": ("frame time: VISUAL at two thresholds",
               lambda scale: run_figure10b(scale)),
    "fig11": ("visual fidelity (missed objects)",
              lambda scale: run_figure11(scale)),
    "fig12": ("search performance across motion patterns",
              lambda scale: run_figure12(scale)),
    "table3": ("frame time and variance vs eta",
               lambda scale: run_table3(scale)),
    "memory": ("peak memory: VISUAL vs REVIEW",
               lambda scale: run_memory_comparison(scale)),
    "ablation-nvo": ("eq.4 NVO termination heuristic on/off",
                     lambda scale: run_nvo_ablation(scale)),
    "ablation-split": ("Ang-Tan vs Guttman node splitting",
                       lambda scale: run_split_ablation(scale)),
    "ablation-flip": ("cell-flip I/O vs tree size",
                      lambda scale: run_flip_scaling()),
    "baselines": ("VISUAL vs REVIEW vs LoD-R-tree across sessions",
                  lambda scale: run_baseline_comparison(scale)),
    "ext-priority": ("frustum-prioritized traversal response time",
                     lambda scale: run_priority_extension(scale)),
    "ext-prefetch": ("cell prefetching: warm-hit flip costs",
                     lambda scale: run_prefetch_extension(scale)),
    "ext-nodecache": ("tree-node cache-size sweep",
                      lambda scale: run_node_cache_sweep(scale)),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HDoV-tree (ICDE 2003) reproduction experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+",
                     help="experiment ids (or 'all')")
    run.add_argument("--scale", default="medium",
                     choices=["small", "medium", "large"],
                     help="environment scale (default: medium)")

    profile = sub.add_parser(
        "profile",
        help="run an instrumented walkthrough; emit a JSON I/O report")
    profile.add_argument("--scale", default="small",
                         choices=["small", "medium", "large"],
                         help="environment scale (default: small)")
    profile.add_argument("--session", type=int, default=1,
                         choices=[1, 2, 3, 4],
                         help="motion pattern (default: 1, normal walk)")
    profile.add_argument("--eta", type=float, default=0.001,
                         help="DoV threshold (default: 0.001)")
    profile.add_argument("--frames", type=int, default=None,
                         help="frame count (default: the scale's)")
    profile.add_argument("--scheme", default=None,
                         help="storage scheme (default: the scale's)")
    profile.add_argument("--compress", action="store_true",
                         help="build with the packed delta V-page codec")
    profile.add_argument("--spans", action="store_true",
                         help="embed the full span list in the report")
    profile.add_argument("--output", default=None, metavar="FILE",
                         help="write the report to FILE (default: stdout)")

    chaos = sub.add_parser(
        "chaos",
        help="replay a walkthrough under a fault plan; emit a JSON report")
    chaos.add_argument("--scale", default="small",
                       choices=["small", "medium", "large"],
                       help="environment scale (default: small)")
    chaos.add_argument("--session", type=int, default=1,
                       choices=[1, 2, 3, 4],
                       help="motion pattern (default: 1, normal walk)")
    chaos.add_argument("--eta", type=float, default=0.001,
                       help="DoV threshold (default: 0.001)")
    chaos.add_argument("--frames", type=int, default=None,
                       help="frame count (default: the scale's)")
    chaos.add_argument("--scheme", default=None,
                       help="storage scheme (default: the scale's)")
    chaos.add_argument("--compress", action="store_true",
                       help="build with the packed delta V-page codec "
                            "(faults then hit compressed records too)")
    chaos.add_argument("--plan", default="aggressive",
                       help="fault plan name (default: aggressive; "
                            "see --list-plans)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-injector seed (default: 0); the "
                            "same seed reproduces the same report")
    chaos.add_argument("--output", default=None, metavar="FILE",
                       help="write the report to FILE (default: stdout)")
    chaos.add_argument("--list-plans", action="store_true",
                       help="list the built-in fault plans and exit")

    layout = sub.add_parser(
        "layout",
        help="rewrite the V-page disk layout along the walkthrough tour "
             "and report before/after seeks and compression")
    layout.add_argument("--scale", default="small",
                        choices=["small", "medium", "large"],
                        help="environment scale (default: small)")
    layout.add_argument("--session", type=int, default=4,
                        choices=[1, 2, 3, 4],
                        help="motion pattern (default: 4, the loop "
                             "circuit the rewriter targets)")
    layout.add_argument("--eta", type=float, default=0.001,
                        help="DoV threshold (default: 0.001)")
    layout.add_argument("--frames", type=int, default=None,
                        help="frame count (default: the scale's)")
    layout.add_argument("--schemes", nargs="+", metavar="SCHEME",
                        default=None,
                        help="schemes to rewrite (default: vertical and "
                             "indexed-vertical)")
    layout.add_argument("--output", default=None, metavar="FILE",
                        help="write the report to FILE (default: stdout)")

    crash = sub.add_parser(
        "crash",
        help="sweep a crash-point matrix over the journaled write path; "
             "emit a byte-deterministic JSON report")
    crash.add_argument("--seed", type=int, default=0,
                       help="workload/injector seed (default: 0); the "
                            "same seed reproduces the report byte-for-"
                            "byte")
    crash.add_argument("--pages", type=int, default=8,
                       help="pages in the journaled file (default: 8)")
    crash.add_argument("--page-size", type=int, default=128,
                       help="bytes per page (default: 128)")
    crash.add_argument("--txns", type=int, default=5,
                       help="write transactions (default: 5; every "
                            "second one checkpoints)")
    crash.add_argument("--writes", type=int, default=3,
                       help="page writes per transaction (default: 3)")
    crash.add_argument("--cache-cells", type=int, default=10,
                       help="cells in the precompute-cache torn-tail "
                            "sweep (default: 10)")
    crash.add_argument("--cache-stride", type=int, default=7,
                       help="byte stride of interior cache truncation "
                            "points (default: 7)")
    crash.add_argument("--output", default=None, metavar="FILE",
                       help="write the report to FILE (default: stdout)")

    precompute = sub.add_parser(
        "precompute",
        help="run the per-cell DoV precompute pipeline; emit a JSON "
             "summary with the table's content digest")
    precompute.add_argument("--scale", default="small",
                            choices=["small", "medium", "large"],
                            help="environment scale (default: small)")
    precompute.add_argument("--resolution", type=int, default=None,
                            help="cube-map resolution (default: the "
                                 "scale's)")
    precompute.add_argument("--samples", type=int, default=1,
                            help="viewpoint samples per cell (default: 1)")
    precompute.add_argument("--min-dov", type=float, default=0.0,
                            help="DoV floor below which an object is "
                                 "treated as hidden (default: 0)")
    precompute.add_argument("--workers", type=int, default=1,
                            help="worker processes (default: 1; any "
                                 "count yields a bit-identical table)")
    precompute.add_argument("--batch-cells", type=int, default=None,
                            help="cells per vectorized kernel call "
                                 "(default: 16)")
    precompute.add_argument("--cache-dir", default=None, metavar="DIR",
                            help="resumable cell-cache directory")
    precompute.add_argument("--resume", action="store_true",
                            help="reuse cells already in --cache-dir "
                                 "(fingerprint-checked)")
    precompute.add_argument("--table", default=None, metavar="FILE",
                            help="write the visibility table to "
                                 "FILE (.npz)")
    precompute.add_argument("--output", default=None, metavar="FILE",
                            help="write the JSON summary to FILE "
                                 "(default: stdout)")
    precompute.add_argument("--quiet", action="store_true",
                            help="suppress the progress line on stderr")

    serve = sub.add_parser(
        "serve",
        help="serve N concurrent walkthrough sessions through a shared "
             "buffer pool; emit a deterministic JSON report")
    serve.add_argument("--sessions", type=int, default=8,
                       help="concurrent walkthrough sessions (default: 8)")
    serve.add_argument("--workers", type=int, default=4,
                       help="fidelity-scoring worker threads (default: 4; "
                            "never changes a byte of the report)")
    serve.add_argument("--seed", type=int, default=7,
                       help="session motion-pattern seed (default: 7); "
                            "the same seed reproduces the same report")
    serve.add_argument("--scale", default="small",
                       choices=["small", "medium", "large"],
                       help="environment scale (default: small)")
    serve.add_argument("--eta", type=float, default=0.001,
                       help="DoV threshold (default: 0.001)")
    serve.add_argument("--frames", type=int, default=None,
                       help="frames per session (default: the scale's)")
    serve.add_argument("--scheme", default=None,
                       help="storage scheme (default: the scale's)")
    serve.add_argument("--max-active", type=int, default=None,
                       help="admission-control slots (default: no limit)")
    serve.add_argument("--frame-budget-ms", type=float, default=None,
                       help="simulated per-frame deadline; sessions over "
                            "budget shed their next query to the root LoD")
    serve.add_argument("--pool-pages", type=int, default=256,
                       help="shared buffer-pool capacity in pages "
                            "(default: 256; 0 serves unpooled)")
    serve.add_argument("--policy", default=None, choices=["lru", "2q"],
                       help="pool replacement policy (default: the "
                            "scale's, normally lru)")
    serve.add_argument("--prefetch", action="store_true", default=None,
                       help="enable cross-session predictive pool "
                            "prefetch (default: the scale's, normally "
                            "off)")
    serve.add_argument("--plan", default=None,
                       help="optional fault plan to serve under "
                            "(see 'repro chaos --list-plans')")
    serve.add_argument("--fault-seed", type=int, default=0,
                       help="fault-injector seed (default: 0)")
    serve.add_argument("--output", default=None, metavar="FILE",
                       help="write the report to FILE (default: stdout)")

    traffic = sub.add_parser(
        "traffic",
        help="offer a seeded Poisson stream of walkthrough sessions to "
             "the HTTP front-end; emit a traffic/latency JSON report")
    traffic.add_argument("--sessions", type=int, default=200,
                         help="sessions offered (default: 200)")
    traffic.add_argument("--seed", type=int, default=0,
                         help="arrival/pattern seed (default: 0); the "
                              "same seed reproduces the deterministic "
                              "report sections byte-for-byte")
    traffic.add_argument("--workers", type=int, default=1,
                         help="echoed for symmetry with serve (default: "
                              "1; never changes a deterministic byte)")
    traffic.add_argument("--scale", default="small",
                         choices=["small", "medium", "large"],
                         help="environment scale (default: small)")
    traffic.add_argument("--eta", type=float, default=0.001,
                         help="DoV threshold (default: 0.001)")
    traffic.add_argument("--frames", type=int, default=30,
                         help="frames per session (default: 30 — many "
                              "short sessions, not a few long ones)")
    traffic.add_argument("--scheme", default=None,
                         help="storage scheme (default: the scale's)")
    traffic.add_argument("--arrival-rate", type=float, default=50.0,
                         help="offered load in sessions per virtual "
                              "second (default: 50)")
    traffic.add_argument("--hot-fraction", type=float, default=0.5,
                         help="fraction of arrivals replaying the hot "
                              "path, pattern 1 (default: 0.5)")
    traffic.add_argument("--max-active", type=int, default=32,
                         help="admission slots; arrivals past this are "
                              "shed with a 503 (default: 32)")
    traffic.add_argument("--frame-budget-ms", type=float, default=None,
                         help="simulated per-frame deadline; sessions "
                              "over budget degrade their next query")
    traffic.add_argument("--pool-pages", type=int, default=256,
                         help="shared buffer-pool capacity in pages "
                              "(default: 256; 0 serves unpooled)")
    traffic.add_argument("--plan", default=None,
                         help="optional fault plan to serve under "
                              "(see 'repro chaos --list-plans')")
    traffic.add_argument("--fault-seed", type=int, default=0,
                         help="fault-injector seed (default: 0)")
    traffic.add_argument("--deterministic-only", action="store_true",
                         help="emit only the machine-independent "
                              "sections (what the CI job diffs)")
    traffic.add_argument("--output", default=None, metavar="FILE",
                         help="write the report to FILE (default: "
                              "stdout)")

    lint = sub.add_parser(
        "lint",
        help="run the repo's static-analysis rule suite (RPR codes)")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files/directories to lint (default: src)")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="subtract the accepted violations in FILE")
    lint.add_argument("--write-baseline", default=None, metavar="FILE",
                      help="snapshot current violations to FILE and exit 0")
    lint.add_argument("--format", default="text",
                      choices=["text", "json"],
                      help="diagnostic output format (default: text)")
    lint.add_argument("--rules", action="store_true",
                      help="list the registered rules and exit")

    locks = sub.add_parser(
        "locks",
        help="print the static and witnessed lock-order graphs")
    locks.add_argument("paths", nargs="*", metavar="PATH",
                       help="files/directories to analyse statically "
                            "(default: src)")
    locks.add_argument("--output", default=None, metavar="FILE",
                       help="write the JSON report to FILE (default: "
                            "stdout)")
    return parser


def cmd_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, (description, _runner) in EXPERIMENTS.items():
        print(f"  {name:<{width}}  {description}")
    return 0


def cmd_run(names, scale_name: str) -> int:
    if "all" in names:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print("use 'python -m repro list'", file=sys.stderr)
        return 2
    scale = get_scale(scale_name)
    for name in names:
        _description, runner = EXPERIMENTS[name]
        # perf_counter, not time.time(): wall-clock can jump (NTP, DST)
        # and RPR004 forbids it for elapsed-time measurement.
        started = time.perf_counter()
        result = runner(scale)
        elapsed = time.perf_counter() - started
        print()
        print(result.format_table())
        print(f"[{name} completed in {elapsed:.1f}s wall-clock "
              f"at scale {scale_name!r}]")
    return 0


def cmd_profile(args) -> int:
    from repro.obs.profile import run_profile

    report = run_profile(scale=args.scale, session=args.session,
                         eta=args.eta, frames=args.frames,
                         scheme=args.scheme, compress=args.compress,
                         include_spans=args.spans)
    text = json.dumps(report, indent=2, sort_keys=False)
    if args.output is not None:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        reconciled = report["io"]["reconciled"]
        print(f"wrote {args.output} (reconciled={reconciled})")
    else:
        print(text)
    return 0 if report["io"]["reconciled"] else 1


def cmd_chaos(args) -> int:
    from repro.obs.chaos import run_chaos
    from repro.storage.faults import named_plan, plan_names

    if args.list_plans:
        width = max(len(name) for name in plan_names())
        for name in plan_names():
            rules = named_plan(name).rules
            kinds = ", ".join(sorted({r.kind for r in rules}))
            print(f"  {name:<{width}}  {len(rules)} rule(s): {kinds}")
        return 0
    from repro.errors import StorageError

    try:
        report = run_chaos(scale=args.scale, session=args.session,
                           eta=args.eta, frames=args.frames,
                           scheme=args.scheme, plan=args.plan,
                           seed=args.seed, compress=args.compress)
    except StorageError as exc:
        # An unknown plan name is a usage error, not a crash.
        print(f"repro chaos: {exc}", file=sys.stderr)
        return 2
    text = json.dumps(report, indent=2, sort_keys=False)
    if args.output is not None:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        outcome = report["outcome"]
        print(f"wrote {args.output} (completed={outcome['completed']}, "
              f"survived {outcome['frames_survived']}"
              f"/{outcome['frames_total']} frames)")
    else:
        print(text)
    # Nonzero on any violated invariant — not just an aborted replay; a
    # completed run whose accounting is inconsistent must fail CI too.
    return 0 if report["invariants"]["ok"] else 1


def cmd_layout(args) -> int:
    from repro.errors import ReproError
    from repro.obs.layout import DEFAULT_SCHEMES, run_layout

    schemes = tuple(args.schemes) if args.schemes else DEFAULT_SCHEMES
    try:
        report = run_layout(scale=args.scale, session=args.session,
                            eta=args.eta, frames=args.frames,
                            schemes=schemes)
    except ReproError as exc:
        # An unsupported scheme name is a usage error, not a crash.
        print(f"repro layout: {exc}", file=sys.stderr)
        return 2
    text = json.dumps(report, indent=2, sort_keys=False)
    if args.output is not None:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        back = {name: (sr["baseline"]["light"]["back_seeks"],
                       sr["rewritten"]["light"]["back_seeks"])
                for name, sr in report["schemes"].items()}
        print(f"wrote {args.output} (ok={report['ok']}, "
              f"back_seeks before/after: {back})")
    else:
        print(text)
    return 0 if report["ok"] else 1


def cmd_crash(args) -> int:
    from repro.errors import ReproError
    from repro.obs.crash import run_crash_sweep

    try:
        report = run_crash_sweep(seed=args.seed, pages=args.pages,
                                 page_size=args.page_size, txns=args.txns,
                                 writes_per_txn=args.writes,
                                 cache_cells=args.cache_cells,
                                 cache_stride=args.cache_stride)
    except ReproError as exc:
        print(f"repro crash: {exc}", file=sys.stderr)
        return 2
    text = json.dumps(report, indent=2, sort_keys=False)
    if args.output is not None:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        summary = report["summary"]
        print(f"wrote {args.output} (points={summary['points']}, "
              f"recovery_points={summary['recovery_points']}, "
              f"violations={summary['violations']})")
    else:
        print(text)
    return 0 if report["summary"]["ok"] else 1


def cmd_precompute(args) -> int:
    from repro.errors import VisibilityError
    from repro.obs.metrics import use_registry
    from repro.scene.city import generate_city
    from repro.visibility.cells import CellGrid
    from repro.visibility.persist import save_visibility, visibility_digest
    from repro.visibility.precompute import (DEFAULT_BATCH_CELLS,
                                             precompute_visibility)

    scale = get_scale(args.scale)
    resolution = (args.resolution if args.resolution is not None
                  else scale.hdov.dov_resolution)
    batch_cells = (args.batch_cells if args.batch_cells is not None
                   else DEFAULT_BATCH_CELLS)
    scene = generate_city(scale.city)
    grid = CellGrid.covering(scene.bounds(), scale.cell_size)

    def progress(done: int, total: int) -> None:
        if not args.quiet:
            print(f"\rprecompute: {done}/{total} cells", end="",
                  file=sys.stderr, flush=True)

    started = time.perf_counter()
    try:
        with use_registry() as registry:
            table = precompute_visibility(
                scene, grid, resolution=resolution,
                samples_per_cell=args.samples, min_dov=args.min_dov,
                workers=args.workers, batch_cells=batch_cells,
                cache_dir=args.cache_dir, resume=args.resume,
                progress=progress)
            counters = registry.collect()
    except VisibilityError as exc:
        if not args.quiet:
            print(file=sys.stderr)
        print(f"repro precompute: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    if not args.quiet:
        print(file=sys.stderr)
    if args.table is not None:
        save_visibility(table, args.table)
    summary = {
        "scale": args.scale,
        "resolution": resolution,
        "samples_per_cell": args.samples,
        "min_dov": args.min_dov,
        "workers": args.workers,
        "batch_cells": batch_cells,
        "cells_total": int(counters.get("precompute_cells_total", 0.0)),
        "cells_cached": int(counters.get("precompute_cells_cached_total",
                                         0.0)),
        "rays_cast": int(counters.get("precompute_rays_total", 0.0)),
        "avg_visible": round(table.average_visible(), 3),
        "elapsed_s": round(elapsed, 3),
        "table": args.table,
        "digest": visibility_digest(table),
    }
    text = json.dumps(summary, indent=2, sort_keys=False)
    if args.output is not None:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output} (digest={summary['digest'][:16]}...)")
    else:
        print(text)
    return 0


def cmd_serve(args) -> int:
    from repro.errors import ReproError
    from repro.serving import run_serve

    try:
        report = run_serve(sessions=args.sessions, workers=args.workers,
                           seed=args.seed, scale=args.scale, eta=args.eta,
                           frames=args.frames, scheme=args.scheme,
                           max_active=args.max_active,
                           frame_budget_ms=args.frame_budget_ms,
                           pool_pages=args.pool_pages,
                           policy=args.policy, prefetch=args.prefetch,
                           plan=args.plan,
                           fault_seed=args.fault_seed)
    except ReproError as exc:
        # Bad arguments or an unknown plan name: a usage error.
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    text = json.dumps(report, indent=2, sort_keys=False)
    if args.output is not None:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        outcome = report["outcome"]
        print(f"wrote {args.output} (completed={outcome['completed']}, "
              f"{outcome['frames_served']} frames in "
              f"{outcome['rounds']} rounds)")
    else:
        print(text)
    return 0 if report["outcome"]["completed"] else 1


def cmd_traffic(args) -> int:
    from repro.errors import ReproError
    from repro.serving.loadgen import run_traffic

    try:
        report = run_traffic(sessions=args.sessions, seed=args.seed,
                             workers=args.workers, scale=args.scale,
                             eta=args.eta, frames=args.frames,
                             scheme=args.scheme,
                             arrival_rate=args.arrival_rate,
                             hot_fraction=args.hot_fraction,
                             max_active=args.max_active,
                             frame_budget_ms=args.frame_budget_ms,
                             pool_pages=args.pool_pages, plan=args.plan,
                             fault_seed=args.fault_seed)
    except ReproError as exc:
        # Bad arguments or an unknown plan name: a usage error.
        print(f"repro traffic: {exc}", file=sys.stderr)
        return 2
    if args.deterministic_only:
        report = {key: report[key] for key in ("traffic", "deterministic")}
    text = json.dumps(report, indent=2, sort_keys=False)
    if args.output is not None:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        det = report["deterministic"]
        print(f"wrote {args.output} "
              f"(offered={det['sessions']['offered']}, "
              f"shed_rate={det['sessions']['shed_rate']:.3f}, "
              f"frames={det['frames']['served']})")
    else:
        print(text)
    unexpected = report["deterministic"]["requests"]["unexpected"]
    return 0 if not unexpected else 1


def cmd_lint(args) -> int:
    from repro.analysis import all_rules, lint_paths, save_baseline

    if args.rules:
        rules = [rule() for rule in all_rules()]
        width = max(len(rule.code) for rule in rules)
        for rule in rules:
            print(f"  {rule.code:<{width}}  {rule.name}: {rule.summary}")
        return 0
    paths = args.paths or (["src"] if os.path.isdir("src") else ["."])
    try:
        result = lint_paths(paths, baseline_path=args.baseline)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline is not None:
        save_baseline(args.write_baseline, result.before_baseline)
        print(f"wrote baseline {args.write_baseline} "
              f"({len(result.before_baseline)} accepted violations)")
        return 0
    if args.format == "json":
        print(json.dumps({
            "files_checked": result.files_checked,
            "pragma_suppressed": result.pragma_suppressed,
            "baseline_suppressed": result.baseline_suppressed,
            "violations": [vars(d) for d in result.diagnostics],
        }, indent=2))
    else:
        for diagnostic in result.diagnostics:
            print(diagnostic.format())
        suppressed = ""
        if result.pragma_suppressed or result.baseline_suppressed:
            suppressed = (f" ({result.pragma_suppressed} pragma-"
                          f"suppressed, {result.baseline_suppressed} "
                          f"baselined)")
        print(f"repro lint: {len(result.diagnostics)} violation(s) in "
              f"{result.files_checked} file(s){suppressed}")
    return 0 if result.ok else 1


def cmd_locks(args) -> int:
    """Static lock graph (RPR010's model) next to a witnessed one.

    The witnessed half runs one deterministic, single-threaded exercise
    against the real locks — a demo scheduler-level lock held over a
    tiny buffer pool churning an in-memory paged file, so dirty
    evictions drive the sanctioned pool -> file write-back edge — under
    a fresh :class:`LockOrderWitness` and a fresh metrics registry.
    The report is keyed by lattice level only, so two runs produce
    byte-identical output (the CI drift gate diffs exactly that).
    """
    import threading

    from repro.analysis import load_contexts
    from repro.analysis.concurrency import build_lock_graph
    from repro.concurrency import (LATTICE, LockOrderWitness, installed,
                                   wrap_lock)
    from repro.obs.metrics import use_registry
    from repro.storage import pageio
    from repro.storage.buffer import BufferPool
    from repro.storage.pagedfile import PagedFile

    paths = args.paths or (["src"] if os.path.isdir("src") else ["."])
    try:
        static = build_lock_graph(load_contexts(paths)).summary()
    except FileNotFoundError as exc:
        print(f"repro locks: {exc}", file=sys.stderr)
        return 2

    witness = LockOrderWitness()
    with installed(witness), use_registry():
        demo = wrap_lock(threading.Lock(), level=LATTICE[0],
                         name="demo-scheduler")
        pfile = PagedFile("locks-demo", page_size=64)
        pool = BufferPool(2, name="locks-demo")
        for _ in range(4):
            pageio.append_page(pfile, b"", component="locks-demo")
        with demo:
            for page in range(4):
                pool.put(pfile, page, b"hdov")
            for page in range(4):
                pool.get(pfile, page)
            pool.flush()
    witnessed = witness.report()

    report = {"static": static, "witnessed": witnessed}
    text = json.dumps(report, indent=2)
    failed = bool(static["violations"]) or bool(witnessed["violations"])
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output} "
              f"(static_edges={len(static['edges'])}, "
              f"witnessed_edges={len(witnessed['edges'])}, "
              f"violations={'yes' if failed else 'no'})")
    else:
        print(text)
    return 1 if failed else 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "layout":
        return cmd_layout(args)
    if args.command == "crash":
        return cmd_crash(args)
    if args.command == "precompute":
        return cmd_precompute(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "traffic":
        return cmd_traffic(args)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "locks":
        return cmd_locks(args)
    return cmd_run(args.experiments, args.scale)


if __name__ == "__main__":       # pragma: no cover
    sys.exit(main())
