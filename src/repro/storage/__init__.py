"""Storage substrate: paged files, buffer pool, disk timing model.

This package replaces the raw-disk substrate of the paper's prototype.
Every page access is counted and charged against a deterministic
:class:`~repro.storage.disk.DiskModel`, which is how the library produces
reproducible "time" numbers on any machine.
"""

from repro.storage.disk import DiskModel, IOStats
from repro.storage.pagedfile import PagedFile
from repro.storage.buffer import BufferPool
from repro.storage.objectstore import ObjectStore
from repro.storage import pageio

__all__ = ["DiskModel", "IOStats", "PagedFile", "BufferPool", "ObjectStore",
           "pageio"]
