"""Storage substrate: paged files, buffer pool, disk timing model.

This package replaces the raw-disk substrate of the paper's prototype.
Every page access is counted and charged against a deterministic
:class:`~repro.storage.disk.DiskModel`, which is how the library produces
reproducible "time" numbers on any machine.

Resilience (PR 3) lives here too: :mod:`repro.storage.faults` injects
deterministic failures beneath :class:`PagedFile`, and
:mod:`repro.storage.retry` absorbs the transient ones at the
:mod:`~repro.storage.pageio` facade.

Crash consistency (PR 8): :mod:`repro.storage.journal` write-ahead-logs
every journaled page write, :mod:`repro.storage.recovery` replays
committed records on open, and :mod:`repro.storage.atomic` gives the
metadata writers (manifests, persisted tables, baselines) atomic,
durable whole-file replacement.
"""

from repro.storage.disk import DiskModel, IOStats
from repro.storage.pagedfile import PagedFile
from repro.storage.buffer import BufferPool
from repro.storage.objectstore import ObjectStore
from repro.storage.faults import (FaultInjector, FaultPlan, FaultRule,
                                  named_plan, plan_names)
from repro.storage.retry import (DEFAULT_RETRY_POLICY, RetryPolicy,
                                 run_with_retry)
from repro.storage.journal import WriteAheadJournal, journal_path
from repro.storage.recovery import RecoveryReport, recover
from repro.storage.atomic import atomic_write_bytes, atomic_write_text
from repro.storage import pageio

__all__ = ["DiskModel", "IOStats", "PagedFile", "BufferPool", "ObjectStore",
           "FaultInjector", "FaultPlan", "FaultRule", "named_plan",
           "plan_names", "RetryPolicy", "DEFAULT_RETRY_POLICY",
           "run_with_retry", "WriteAheadJournal", "journal_path",
           "RecoveryReport", "recover", "atomic_write_bytes",
           "atomic_write_text", "pageio"]
