"""Deterministic disk timing model and I/O statistics.

The paper reports wall-clock search times measured against real disks.
Our reproduction counts page accesses exactly and converts them to
simulated milliseconds with an explicit seek/transfer model, so results
are machine-independent:

* a *random* access (page id not adjacent to the previous access on the
  same file) costs ``seek_ms + transfer_ms``;
* a *sequential* access (next page id) costs ``transfer_ms`` only.

This distinction is what separates the vertical scheme (DFS-ordered,
sequential V-pages) from the horizontal scheme (scattered V-pages) in
Figure 7.

Non-sequential accesses are further split by *direction*: a seek whose
target page id is **below** the previous position on the same file is a
``back_seek``; one at or above it (or the first access after a head
reset) is a ``forward_seek``.  Backward seeks are what a layout rewrite
(``repro layout``) can remove — the head must travel against the scan
direction and no read-ahead helps — so they may be costed separately via
``DiskModel.back_seek_ms``.  By default ``back_seek_ms`` equals
``seek_ms`` and every historical total is unchanged; the split counters
are new information, not a re-pricing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class IOStats:
    """Mutable accumulator of I/O activity.

    One instance is shared per experiment run; subsystems add their page
    accesses to it.  ``snapshot()``/``delta()`` support per-query deltas.
    """

    reads: int = 0
    writes: int = 0
    seeks: int = 0
    sequential_reads: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    simulated_ms: float = 0.0
    #: Direction split of ``seeks``: ``back_seeks + forward_seeks ==
    #: seeks`` always holds (a sequential access increments neither).
    back_seeks: int = 0
    forward_seeks: int = 0

    @property
    def total_ios(self) -> int:
        return self.reads + self.writes

    def snapshot(self) -> "IOStats":
        """An immutable-by-convention copy of the current counters."""
        return IOStats(reads=self.reads, writes=self.writes,
                       seeks=self.seeks,
                       sequential_reads=self.sequential_reads,
                       bytes_read=self.bytes_read,
                       bytes_written=self.bytes_written,
                       simulated_ms=self.simulated_ms,
                       back_seeks=self.back_seeks,
                       forward_seeks=self.forward_seeks)

    def delta(self, since: "IOStats") -> "IOStats":
        """Counters accumulated since ``since`` (an earlier snapshot)."""
        return IOStats(
            reads=self.reads - since.reads,
            writes=self.writes - since.writes,
            seeks=self.seeks - since.seeks,
            sequential_reads=self.sequential_reads - since.sequential_reads,
            bytes_read=self.bytes_read - since.bytes_read,
            bytes_written=self.bytes_written - since.bytes_written,
            simulated_ms=self.simulated_ms - since.simulated_ms,
            back_seeks=self.back_seeks - since.back_seeks,
            forward_seeks=self.forward_seeks - since.forward_seeks,
        )

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.seeks = 0
        self.sequential_reads = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.simulated_ms = 0.0
        self.back_seeks = 0
        self.forward_seeks = 0

    def __repr__(self) -> str:
        return (f"IOStats(reads={self.reads}, writes={self.writes}, "
                f"seeks={self.seeks}, back={self.back_seeks}, "
                f"fwd={self.forward_seeks}, seq={self.sequential_reads}, "
                f"ms={self.simulated_ms:.3f})")


@dataclass
class DiskModel:
    """Cost model for one page access.

    Defaults approximate a circa-2003 consumer disk: ~8 ms average seek,
    ~40 MB/s sequential transfer (0.1 ms per 4 KiB page).  Absolute values
    only scale the reported times; all comparisons in the experiments are
    ratio-driven.
    """

    seek_ms: float = 8.0
    transfer_ms: float = 0.1
    #: Forward skips of at most this many pages count as sequential: disk
    #: read-ahead covers them (32 pages = 128 KiB, a typical read-ahead
    #: window).  This is what makes the DFS-ordered V-page and model
    #: layouts pay off even when pruned branches skip pages in the scan.
    readahead_pages: int = 32
    #: Milliseconds for a *backward* seek (target page id below the
    #: previous position).  ``None`` means "same as ``seek_ms``", which
    #: keeps every pre-existing simulated-ms total byte-identical; set it
    #: higher (never lower — ``__post_init__`` enforces the asymmetry) to
    #: model the head travelling against the scan direction with no
    #: read-ahead to hide it.
    back_seek_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.back_seek_ms is not None \
                and self.back_seek_ms < self.seek_ms:
            raise ValueError(
                f"back_seek_ms ({self.back_seek_ms}) must be >= seek_ms "
                f"({self.seek_ms}): a backward seek is never cheaper "
                f"than a forward one")

    @property
    def effective_back_seek_ms(self) -> float:
        """``back_seek_ms`` with the ``None`` default resolved."""
        if self.back_seek_ms is None:
            return self.seek_ms
        return self.back_seek_ms

    def access_cost(self, sequential: bool, *,
                    backward: bool = False) -> float:
        """Simulated milliseconds for one page access."""
        if sequential:
            return self.transfer_ms
        if backward:
            return self.effective_back_seek_ms + self.transfer_ms
        return self.seek_ms + self.transfer_ms

    def charge(self, stats: IOStats, *, write: bool, sequential: bool,
               nbytes: int, backward: bool = False) -> None:
        """Record one page access in ``stats``.

        ``backward`` is only meaningful when ``sequential`` is false; the
        caller (``PagedFile._charge``) classifies the direction against
        the file's previous head position.
        """
        if write:
            stats.writes += 1
            stats.bytes_written += nbytes
        else:
            stats.reads += 1
            stats.bytes_read += nbytes
        if sequential:
            stats.sequential_reads += 1
        elif backward:
            stats.seeks += 1
            stats.back_seeks += 1
        else:
            stats.seeks += 1
            stats.forward_seeks += 1
        stats.simulated_ms += self.access_cost(sequential,
                                               backward=backward)


#: Disk model with zero cost, for tests that only care about counts.
FREE_DISK = DiskModel(seek_ms=0.0, transfer_ms=0.0)
