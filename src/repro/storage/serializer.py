"""Struct-based record serialization for pages.

All on-page records in this library go through these helpers so the byte
layouts live in one place: R-tree nodes, V-pages, V-page-index segments,
and object-store headers.  Layouts use little-endian fixed-width fields.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import SerializationError
from repro.geometry.aabb import AABB

#: MBR: 6 float32 (lo.xyz, hi.xyz)
_MBR = struct.Struct("<6f")
#: Node header: kind (u8), entry count (u16), level (u8), vindex offset (u32)
_NODE_HEADER = struct.Struct("<BHBI")
#: Node entry: MBR + child/object id (u32) + lod pointer (u32)
_NODE_ENTRY = struct.Struct("<6fII")
#: V-entry: DoV (f32) + NVO (u32)  — Section 3.3's VD = (DoV, NVO)
_VENTRY = struct.Struct("<fI")
#: V-page header: node offset (u32) + entry count (u16) + pad (u16)
_VPAGE_HEADER = struct.Struct("<IHH")
#: Index pair: node offset (u32) + V-page pointer (u32)
_INDEX_PAIR = struct.Struct("<II")

NODE_HEADER_SIZE = _NODE_HEADER.size
NODE_ENTRY_SIZE = _NODE_ENTRY.size
VENTRY_SIZE = _VENTRY.size
VPAGE_HEADER_SIZE = _VPAGE_HEADER.size
INDEX_PAIR_SIZE = _INDEX_PAIR.size

#: Sentinel for "no pointer" in u32 pointer fields.
NIL = 0xFFFFFFFF


def encode_mbr(box: AABB) -> bytes:
    return _MBR.pack(*box.lo.astype(np.float32), *box.hi.astype(np.float32))


def decode_mbr(data: bytes, offset: int = 0) -> AABB:
    values = _MBR.unpack_from(data, offset)
    return AABB(np.array(values[0:3], dtype=np.float64),
                np.array(values[3:6], dtype=np.float64))


def encode_node(kind: int, level: int, vindex_offset: int,
                entries: Sequence[Tuple[AABB, int, int]],
                page_size: int) -> bytes:
    """Serialize an R-tree/HDoV node.

    ``entries`` are ``(mbr, child_or_object_id, lod_pointer)`` triples.
    Raises :class:`SerializationError` if the node does not fit the page.
    """
    needed = NODE_HEADER_SIZE + len(entries) * NODE_ENTRY_SIZE
    if needed > page_size:
        raise SerializationError(
            f"node with {len(entries)} entries needs {needed} bytes, "
            f"page is {page_size}")
    parts = [_NODE_HEADER.pack(kind, len(entries), level, vindex_offset)]
    for mbr, child_id, lod_ptr in entries:
        parts.append(_NODE_ENTRY.pack(
            *mbr.lo.astype(np.float32), *mbr.hi.astype(np.float32),
            child_id, lod_ptr))
    return b"".join(parts)


def decode_node(data: bytes) -> Tuple[int, int, int, List[Tuple[AABB, int, int]]]:
    """Inverse of :func:`encode_node`; returns
    ``(kind, level, vindex_offset, entries)``."""
    if len(data) < NODE_HEADER_SIZE:
        raise SerializationError("page too small for a node header")
    kind, count, level, vindex_offset = _NODE_HEADER.unpack_from(data, 0)
    entries: List[Tuple[AABB, int, int]] = []
    offset = NODE_HEADER_SIZE
    for _ in range(count):
        if offset + NODE_ENTRY_SIZE > len(data):
            raise SerializationError("truncated node entry")
        values = _NODE_ENTRY.unpack_from(data, offset)
        mbr = AABB(np.array(values[0:3], dtype=np.float64),
                   np.array(values[3:6], dtype=np.float64))
        entries.append((mbr, values[6], values[7]))
        offset += NODE_ENTRY_SIZE
    return kind, level, vindex_offset, entries


def encode_vpage(node_offset: int, ventries: Sequence[Tuple[float, int]],
                 page_size: int) -> bytes:
    """Serialize a V-page: header plus ``(DoV, NVO)`` per tree-node entry."""
    needed = VPAGE_HEADER_SIZE + len(ventries) * VENTRY_SIZE
    if needed > page_size:
        raise SerializationError(
            f"V-page with {len(ventries)} entries needs {needed} bytes, "
            f"page is {page_size}")
    parts = [_VPAGE_HEADER.pack(node_offset, len(ventries), 0)]
    for dov, nvo in ventries:
        if not 0.0 <= dov <= 1.0:
            raise SerializationError(f"DoV out of [0, 1]: {dov}")
        if nvo < 0:
            raise SerializationError(f"negative NVO: {nvo}")
        parts.append(_VENTRY.pack(dov, nvo))
    return b"".join(parts)


def decode_vpage(data: bytes) -> Tuple[int, List[Tuple[float, int]]]:
    """Inverse of :func:`encode_vpage`; returns ``(node_offset, ventries)``."""
    if len(data) < VPAGE_HEADER_SIZE:
        raise SerializationError("page too small for a V-page header")
    node_offset, count, _pad = _VPAGE_HEADER.unpack_from(data, 0)
    ventries: List[Tuple[float, int]] = []
    offset = VPAGE_HEADER_SIZE
    for _ in range(count):
        if offset + VENTRY_SIZE > len(data):
            raise SerializationError("truncated V-entry")
        dov, nvo = _VENTRY.unpack_from(data, offset)
        ventries.append((dov, nvo))
        offset += VENTRY_SIZE
    return node_offset, ventries


def encode_index_pairs(pairs: Sequence[Tuple[int, int]]) -> bytes:
    """Serialize (node offset, V-page pointer) pairs for the
    indexed-vertical scheme's per-cell segment."""
    return b"".join(_INDEX_PAIR.pack(off, ptr) for off, ptr in pairs)


def decode_index_pairs(data: bytes, count: int) -> List[Tuple[int, int]]:
    if count * INDEX_PAIR_SIZE > len(data):
        raise SerializationError("truncated index-pair segment")
    return [_INDEX_PAIR.unpack_from(data, i * INDEX_PAIR_SIZE)
            for i in range(count)]


def encode_pointer_array(pointers: Sequence[int]) -> bytes:
    """Serialize a dense u32 pointer array (vertical scheme segment)."""
    return struct.pack(f"<{len(pointers)}I", *pointers)


def decode_pointer_array(data: bytes, count: int) -> List[int]:
    if count * 4 > len(data):
        raise SerializationError("truncated pointer array")
    return list(struct.unpack_from(f"<{count}I", data, 0))
