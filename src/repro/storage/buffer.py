"""LRU buffer pool over a :class:`~repro.storage.pagedfile.PagedFile`.

The walkthrough systems cache tree nodes and V-pages; the buffer pool
makes cache hits free and tracks hit/miss counts.  Pages can be pinned to
protect them from eviction while a traversal holds references.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import BufferPoolError
from repro.obs import names
from repro.obs.metrics import get_registry
from repro.storage.pagedfile import PagedFile


@dataclass
class _Frame:
    data: bytes
    pin_count: int = 0
    dirty: bool = False


class BufferPool:
    """Fixed-capacity page cache with LRU replacement.

    Keys are ``(file, page_id)`` pairs, so one pool can front several
    files (tree file, V-page file, object store) with a single memory
    budget — mirroring how the prototype shares one cache.  Files are
    identified by their stable :attr:`PagedFile.file_id`, never by
    ``id()``: a garbage-collected file's address can be reused by a new
    ``PagedFile``, which would silently serve the old file's frames for
    the new file's pages.

    Parameters
    ----------
    capacity:
        Maximum resident frames.
    name:
        Label for this pool's metrics series (hits, misses, evictions,
        pin churn) in the process metrics registry.
    """

    def __init__(self, capacity: int, *, name: str = "default") -> None:
        if capacity < 1:
            raise BufferPoolError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._frames: "OrderedDict[Tuple[int, int], _Frame]" = OrderedDict()
        self._files: Dict[int, PagedFile] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        registry = get_registry()
        self._m_hits = registry.counter(names.BUFFERPOOL_HITS, pool=name)
        self._m_misses = registry.counter(names.BUFFERPOOL_MISSES,
                                          pool=name)
        self._m_evictions = registry.counter(names.BUFFERPOOL_EVICTIONS,
                                             pool=name)
        self._m_pins = registry.counter(names.BUFFERPOOL_PINS, pool=name)
        self._m_unpins = registry.counter(names.BUFFERPOOL_UNPINS,
                                          pool=name)
        self._m_writebacks = registry.counter(
            names.BUFFERPOOL_WRITEBACKS, pool=name)
        self._m_resident = registry.gauge(names.BUFFERPOOL_RESIDENT_PAGES,
                                          pool=name)

    # -- internals ------------------------------------------------------------

    def _key(self, pfile: PagedFile, page_id: int) -> Tuple[int, int]:
        fid = pfile.file_id
        self._files[fid] = pfile
        return (fid, page_id)

    def _evict_one(self) -> None:
        for key, frame in self._frames.items():
            if frame.pin_count == 0:
                if frame.dirty:
                    fid, page_id = key
                    self._files[fid].write_page(page_id, frame.data)
                    self._m_writebacks.inc()
                del self._frames[key]
                self.evictions += 1
                self._m_evictions.inc()
                return
        raise BufferPoolError("all frames are pinned; cannot evict")

    # -- public API -------------------------------------------------------------

    def get(self, pfile: PagedFile, page_id: int, *, pin: bool = False) -> bytes:
        """Return page contents, reading through the file on a miss."""
        key = self._key(pfile, page_id)
        frame = self._frames.get(key)
        if frame is not None:
            self.hits += 1
            self._m_hits.inc()
            self._frames.move_to_end(key)
        else:
            self.misses += 1
            self._m_misses.inc()
            if len(self._frames) >= self.capacity:
                self._evict_one()
            frame = _Frame(pfile.read_page(page_id))
            self._frames[key] = frame
            self._m_resident.set(len(self._frames))
        if pin:
            frame.pin_count += 1
            self._m_pins.inc()
        return frame.data

    def put(self, pfile: PagedFile, page_id: int, data: bytes) -> None:
        """Install new page contents; written back on eviction or flush."""
        if len(data) > pfile.page_size:
            raise BufferPoolError("payload exceeds page size")
        key = self._key(pfile, page_id)
        frame = self._frames.get(key)
        if frame is None:
            if len(self._frames) >= self.capacity:
                self._evict_one()
            frame = _Frame(data=b"")
            self._frames[key] = frame
            self._m_resident.set(len(self._frames))
        frame.data = bytes(data)
        frame.dirty = True
        self._frames.move_to_end(key)

    def unpin(self, pfile: PagedFile, page_id: int) -> None:
        key = (pfile.file_id, page_id)
        frame = self._frames.get(key)
        if frame is None or frame.pin_count == 0:
            raise BufferPoolError(f"unpin of unpinned page {page_id}")
        frame.pin_count -= 1
        self._m_unpins.inc()

    def contains(self, pfile: PagedFile, page_id: int) -> bool:
        return (pfile.file_id, page_id) in self._frames

    def flush(self) -> None:
        """Write back every dirty frame (keeps frames resident).

        Write-back order is frame LRU order (least recently used first),
        matching the order evictions would have flushed them.
        """
        for (fid, page_id), frame in self._frames.items():
            if frame.dirty:
                self._files[fid].write_page(page_id, frame.data)
                self._m_writebacks.inc()
                frame.dirty = False

    def clear(self) -> None:
        """Flush and drop all frames *and* file references.

        Fails if any page is pinned.  Dropping ``_files`` matters: the
        pool must not keep closed or discarded ``PagedFile`` objects
        alive after the caller is done with them.
        """
        if any(f.pin_count for f in self._frames.values()):
            raise BufferPoolError("cannot clear: pinned pages present")
        self.flush()
        self._frames.clear()
        self._files.clear()
        self._m_resident.set(0)

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (f"BufferPool(capacity={self.capacity}, "
                f"resident={self.resident_pages}, hits={self.hits}, "
                f"misses={self.misses})")
