"""Thread-safe buffer pool over :class:`~repro.storage.pagedfile.PagedFile`.

The walkthrough systems cache tree nodes and V-pages; the buffer pool
makes cache hits free and tracks hit/miss counts.  Pages can be pinned to
protect them from eviction while a traversal holds references.

Replacement is pluggable (see :mod:`repro.storage.replacement`): the
pool owns frames, pins, latches and locking, while a
:class:`~repro.storage.replacement.ReplacementPolicy` owns only the
eviction order.  The default ``"lru"`` policy reproduces the historical
LRU pool bit-for-bit; ``"2q"`` adds scan resistance for the
many-session undersized-pool regime.

Concurrency model (see DESIGN.md §10):

* one pool-wide :class:`threading.RLock` guards all frame-table state —
  get/put/evict/unpin/flush/clear are linearized on it; the policy is
  only ever called with this lock held;
* a per-``(file, page)`` *in-flight read latch* gives single-flight
  reads: the first thread to miss a page becomes the owner and performs
  the disk read with the pool lock **released**; later threads faulting
  the same page block on the latch and share the owner's bytes (they
  count as hits, plus a ``coalesced`` counter, because no disk read was
  issued on their behalf);
* lock order is pool lock → file lock, never the reverse.  The pool
  calls into a :class:`PagedFile` while holding its lock only for
  eviction write-back; miss reads happen outside the pool lock so a slow
  read of one page never blocks hits on other pages.

Speculative reads (:meth:`BufferPool.prefetch`) use the same
single-flight path but none of the demand counters: an issued prefetch
is counted ``prefetch_useful`` the first time a demand ``get`` consumes
it (including by coalescing onto the in-flight latch) and
``prefetch_wasted`` if it is evicted untouched — so demand hit/miss
accounting stays comparable with prefetch on or off.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Union

from repro.concurrency.witness import wrap_lock
from repro.errors import BufferPoolError, BufferPoolExhaustedError
from repro.obs import names
from repro.obs.metrics import get_registry
from repro.storage.pagedfile import PagedFile
from repro.storage.replacement import ReplacementPolicy, make_policy

#: Signature for a pluggable miss reader: ``reader(pfile, page_id) -> bytes``.
#: The serving layer injects a reader that routes through the
#: ``repro.storage.pageio`` facade so pool misses are retried and counted
#: like every other sanctioned page access.
PageReader = Callable[[PagedFile, int], bytes]


@dataclass
class _Frame:
    data: bytes
    pin_count: int = 0
    dirty: bool = False
    #: True while the frame holds unconsumed prefetched bytes.
    speculative: bool = False


@dataclass
class _Latch:
    """In-flight read marker for one ``(file, page)`` key.

    The owner thread sets exactly one of ``data``/``error`` before
    signalling ``done``; waiters read the fields only after ``done``.
    ``speculative``/``consumed`` track prefetch attribution: a demand
    waiter on a speculative latch consumes the prefetch exactly once.
    """

    done: threading.Event = field(default_factory=threading.Event)
    data: Optional[bytes] = None
    error: Optional[BaseException] = None
    speculative: bool = False
    consumed: bool = False


class BufferPool:
    """Fixed-capacity page cache with pluggable replacement, thread-safe.

    Keys are ``(file, page_id)`` pairs, so one pool can front several
    files (tree file, V-page file, object store) with a single memory
    budget — mirroring how the prototype shares one cache.  Files are
    identified by their stable :attr:`PagedFile.file_id`, never by
    ``id()``: a garbage-collected file's address can be reused by a new
    ``PagedFile``, which would silently serve the old file's frames for
    the new file's pages.

    Parameters
    ----------
    capacity:
        Maximum resident frames.
    name:
        Label for this pool's metrics series (hits, misses, evictions,
        pin churn) in the process metrics registry.
    policy:
        Replacement policy: ``"lru"`` (default, the historical
        behavior), ``"2q"``, or a ready
        :class:`~repro.storage.replacement.ReplacementPolicy` instance.
    """

    #: Lattice level of ``_lock`` (see repro.concurrency.order): below
    #: the scheduler's state lock, above the per-file I/O lock — the
    #: pool may write back into a PagedFile, a file never calls a pool.
    LOCK_LEVEL = "bufferpool"

    def __init__(self, capacity: int, *, name: str = "default",
                 policy: Union[str, ReplacementPolicy] = "lru") -> None:
        if capacity < 1:
            raise BufferPoolError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._policy = make_policy(policy, capacity, name)
        self._lock = wrap_lock(threading.RLock(),
                               level=BufferPool.LOCK_LEVEL,
                               name=f"bufferpool:{name}")
        self._frames: Dict[Tuple[int, int], _Frame] = {}
        self._files: Dict[int, PagedFile] = {}
        self._latches: Dict[Tuple[int, int], _Latch] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.coalesced = 0
        self.prefetch_issued = 0
        self.prefetch_useful = 0
        self.prefetch_wasted = 0
        registry = get_registry()
        self._m_hits = registry.counter(names.BUFFERPOOL_HITS, pool=name)
        self._m_misses = registry.counter(names.BUFFERPOOL_MISSES,
                                          pool=name)
        self._m_evictions = registry.counter(names.BUFFERPOOL_EVICTIONS,
                                             pool=name)
        self._m_pins = registry.counter(names.BUFFERPOOL_PINS, pool=name)
        self._m_unpins = registry.counter(names.BUFFERPOOL_UNPINS,
                                          pool=name)
        self._m_writebacks = registry.counter(
            names.BUFFERPOOL_WRITEBACKS, pool=name)
        self._m_coalesced = registry.counter(
            names.BUFFERPOOL_COALESCED, pool=name)
        self._m_resident = registry.gauge(names.BUFFERPOOL_RESIDENT_PAGES,
                                          pool=name)
        self._m_prefetch_issued = registry.counter(
            names.BUFFERPOOL_PREFETCH_ISSUED, pool=name)
        self._m_prefetch_useful = registry.counter(
            names.BUFFERPOOL_PREFETCH_USEFUL, pool=name)
        self._m_prefetch_wasted = registry.counter(
            names.BUFFERPOOL_PREFETCH_WASTED, pool=name)

    @property
    def policy(self) -> ReplacementPolicy:
        return self._policy

    # -- internals ------------------------------------------------------------

    def _key(self, pfile: PagedFile, page_id: int) -> Tuple[int, int]:
        fid = pfile.file_id
        self._files[fid] = pfile
        return (fid, page_id)

    def _evict_one(self) -> None:
        """Evict the policy's best unpinned candidate.  Caller holds lock."""
        for key in self._policy.victims():
            frame = self._frames.get(key)
            if frame is None or frame.pin_count != 0:
                continue
            if frame.dirty:
                fid, page_id = key
                # Eviction write-back is the one sanctioned pool->file
                # call under the pool lock (DESIGN.md §10); miss reads
                # happen outside the lock via the single-flight latch.
                self._files[fid].write_page(page_id, frame.data)  # repro: ignore[RPR012]
                self._m_writebacks.inc()
            if frame.speculative:
                self.prefetch_wasted += 1
                self._m_prefetch_wasted.inc()
            del self._frames[key]
            self._policy.on_evict(key)
            self.evictions += 1
            self._m_evictions.inc()
            return
        raise BufferPoolExhaustedError(
            f"all {len(self._frames)} frames are pinned; cannot evict")

    def _install(self, key: Tuple[int, int], frame: _Frame) -> None:
        """Insert ``frame``, evicting until under capacity.  Caller holds lock.

        Concurrent owners can momentarily push the table past capacity
        between their pre-read eviction and install, so installation
        enforces the bound again.
        """
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[key] = frame
        self._policy.on_insert(key)
        self._m_resident.set(len(self._frames))

    def _pin_locked(self, frame: _Frame) -> None:
        frame.pin_count += 1
        self._m_pins.inc()

    def _consume_frame_locked(self, frame: _Frame) -> None:
        """First demand hit on a prefetched frame: attribute usefulness."""
        if frame.speculative:
            frame.speculative = False
            self.prefetch_useful += 1
            self._m_prefetch_useful.inc()

    # -- public API -------------------------------------------------------------

    def get(self, pfile: PagedFile, page_id: int, *, pin: bool = False,
            reader: Optional[PageReader] = None) -> bytes:
        """Return page contents, reading through the file on a miss.

        ``reader`` overrides how a miss fetches bytes (default
        ``pfile.read_page``); the serving layer passes a
        ``pageio``-routed reader so misses get retry + component
        accounting.  Concurrent misses on the same page coalesce into
        one read: only the owner's ``reader`` runs, and every waiter
        counts a hit plus ``coalesced``.  A demand hit on a prefetched
        frame (or a demand fault coalescing onto an in-flight prefetch)
        additionally consumes the prefetch: ``prefetch_useful``.
        """
        with self._lock:
            # Under the lock: _key registers pfile in the _files map, and
            # that map is otherwise only mutated lock-held (put/clear).
            key = self._key(pfile, page_id)
            frame = self._frames.get(key)
            if frame is not None:
                self.hits += 1
                self._m_hits.inc()
                self._policy.on_access(key)
                self._consume_frame_locked(frame)
                if pin:
                    self._pin_locked(frame)
                return frame.data
            latch = self._latches.get(key)
            owner = latch is None
            if owner:
                # Count the miss and free a frame *before* the read
                # (matching the sequential pool's eviction-then-read I/O
                # order), then read with the lock released.
                self.misses += 1
                self._m_misses.inc()
                if len(self._frames) >= self.capacity:
                    self._evict_one()
                latch = _Latch()
                self._latches[key] = latch
            else:
                # Another thread is already reading this page; its bytes
                # will be shared, so no disk read is charged to us.
                self.hits += 1
                self.coalesced += 1
                self._m_hits.inc()
                self._m_coalesced.inc()
                if latch.speculative and not latch.consumed:
                    latch.consumed = True
                    self.prefetch_useful += 1
                    self._m_prefetch_useful.inc()
        assert latch is not None
        if owner:
            return self._read_as_owner(key, pfile, page_id, latch,
                                       pin=pin, reader=reader)
        return self._wait_as_waiter(key, latch, pin=pin)

    def prefetch(self, pfile: PagedFile, page_id: int, *,
                 reader: Optional[PageReader] = None) -> bool:
        """Speculatively read a page into the pool; ``True`` if issued.

        No demand counters move: a resident or in-flight page is left
        alone (``False``), and an issued read counts only
        ``prefetch_issued``.  The installed frame is marked speculative;
        the first demand ``get`` consuming it (directly or by latch
        coalescing) counts ``prefetch_useful``, and eviction of an
        unconsumed frame counts ``prefetch_wasted`` — never a session's
        demand hit/miss.  A pool whose every frame is pinned declines
        the prefetch instead of raising: speculation is best-effort.
        """
        with self._lock:
            key = self._key(pfile, page_id)
            if key in self._frames or key in self._latches:
                return False
            if len(self._frames) >= self.capacity:
                try:
                    self._evict_one()
                except BufferPoolExhaustedError:
                    return False
            self.prefetch_issued += 1
            self._m_prefetch_issued.inc()
            latch = _Latch(speculative=True)
            self._latches[key] = latch
        self._read_as_owner(key, pfile, page_id, latch, pin=False,
                            reader=reader, speculative=True)
        return True

    def peek(self, pfile: PagedFile, page_id: int) -> Optional[bytes]:
        """Resident page bytes without touching counters or recency.

        The prefetch machinery uses this to decode already-prefetched
        index pages; a demand path must use :meth:`get`.
        """
        with self._lock:
            frame = self._frames.get((pfile.file_id, page_id))
            return frame.data if frame is not None else None

    def _read_as_owner(self, key: Tuple[int, int], pfile: PagedFile,
                       page_id: int, latch: _Latch, *, pin: bool,
                       reader: Optional[PageReader],
                       speculative: bool = False) -> bytes:
        """Perform the single-flight read.  Caller does NOT hold the lock."""
        try:
            if reader is not None:
                data = reader(pfile, page_id)
            else:
                data = pfile.read_page(page_id)
        except BaseException as exc:
            # Propagate the failure to every waiter, then clear the latch
            # so a later get() retries the read instead of deadlocking.
            with self._lock:
                latch.error = exc
                self._latches.pop(key, None)
                latch.done.set()
            raise
        with self._lock:
            # A demand waiter may have consumed the prefetch while the
            # read was in flight; the frame then lands non-speculative.
            frame = _Frame(data, speculative=speculative
                           and not latch.consumed)
            self._install(key, frame)
            if pin:
                self._pin_locked(frame)
            latch.data = data
            self._latches.pop(key, None)
            latch.done.set()
        return data

    def _wait_as_waiter(self, key: Tuple[int, int], latch: _Latch, *,
                        pin: bool) -> bytes:
        latch.done.wait()
        if latch.error is not None:
            raise latch.error
        data = latch.data
        assert data is not None
        with self._lock:
            frame = self._frames.get(key)
            if frame is not None:
                self._policy.on_access(key)
                self._consume_frame_locked(frame)
                if pin:
                    self._pin_locked(frame)
                return frame.data
            # The frame was already evicted between the owner's install
            # and this waiter waking up; the latched bytes stay valid.
            # Re-install only if the caller needs a pinned residency.
            if pin:
                frame = _Frame(data)
                self._install(key, frame)
                self._pin_locked(frame)
        return data

    def put(self, pfile: PagedFile, page_id: int, data: bytes) -> None:
        """Install new page contents; written back on eviction or flush."""
        if len(data) > pfile.page_size:
            raise BufferPoolError("payload exceeds page size")
        with self._lock:
            key = self._key(pfile, page_id)
            frame = self._frames.get(key)
            if frame is None:
                frame = _Frame(data=b"")
                self._install(key, frame)
            frame.data = bytes(data)
            frame.dirty = True
            # Overwriting speculative bytes ends the speculation without
            # attributing usefulness: the prefetched contents were never
            # read.
            frame.speculative = False
            self._policy.on_access(key)

    def unpin(self, pfile: PagedFile, page_id: int) -> None:
        with self._lock:
            key = (pfile.file_id, page_id)
            frame = self._frames.get(key)
            if frame is None or frame.pin_count == 0:
                raise BufferPoolError(f"unpin of unpinned page {page_id}")
            frame.pin_count -= 1
            self._m_unpins.inc()

    def contains(self, pfile: PagedFile, page_id: int) -> bool:
        with self._lock:
            return (pfile.file_id, page_id) in self._frames

    def flush(self) -> None:
        """Write back every dirty frame (keeps frames resident).

        Write-back order is the policy's eviction order (for LRU: least
        recently used first), matching the order evictions would have
        flushed them.
        """
        with self._lock:
            for key in self._policy.keys():
                frame = self._frames.get(key)
                if frame is not None and frame.dirty:
                    fid, page_id = key
                    # Flush write-back mirrors the eviction exception: same
                    # pool->file lock order, and the frame table must not
                    # change mid-flush, so the lock stays held.
                    self._files[fid].write_page(page_id, frame.data)  # repro: ignore[RPR012]
                    self._m_writebacks.inc()
                    frame.dirty = False

    def clear(self) -> None:
        """Flush and drop all frames *and* file references.

        Fails if any page is pinned.  Dropping ``_files`` matters: the
        pool must not keep closed or discarded ``PagedFile`` objects
        alive after the caller is done with them.
        """
        with self._lock:
            if any(f.pin_count for f in self._frames.values()):
                raise BufferPoolError("cannot clear: pinned pages present")
            self.flush()
            self._frames.clear()
            self._policy.clear()
            self._files.clear()
            self._m_resident.set(0)

    @property
    def resident_pages(self) -> int:
        with self._lock:
            return len(self._frames)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def prefetch_stats(self) -> Dict[str, int]:
        """Speculative-read counters (stable key order, for reports)."""
        with self._lock:
            return {"issued": self.prefetch_issued,
                    "useful": self.prefetch_useful,
                    "wasted": self.prefetch_wasted}

    def __repr__(self) -> str:
        return (f"BufferPool(capacity={self.capacity}, "
                f"policy={self._policy.name}, "
                f"resident={self.resident_pages}, hits={self.hits}, "
                f"misses={self.misses})")
