"""LRU buffer pool over a :class:`~repro.storage.pagedfile.PagedFile`.

The walkthrough systems cache tree nodes and V-pages; the buffer pool
makes cache hits free and tracks hit/miss counts.  Pages can be pinned to
protect them from eviction while a traversal holds references.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import BufferPoolError
from repro.storage.pagedfile import PagedFile


@dataclass
class _Frame:
    data: bytes
    pin_count: int = 0
    dirty: bool = False


class BufferPool:
    """Fixed-capacity page cache with LRU replacement.

    Keys are ``(file, page_id)`` pairs, so one pool can front several
    files (tree file, V-page file, object store) with a single memory
    budget — mirroring how the prototype shares one cache.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise BufferPoolError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._frames: "OrderedDict[Tuple[int, int], _Frame]" = OrderedDict()
        self._files: Dict[int, PagedFile] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- internals ------------------------------------------------------------

    def _key(self, pfile: PagedFile, page_id: int) -> Tuple[int, int]:
        fid = id(pfile)
        self._files[fid] = pfile
        return (fid, page_id)

    def _evict_one(self) -> None:
        for key, frame in self._frames.items():
            if frame.pin_count == 0:
                if frame.dirty:
                    fid, page_id = key
                    self._files[fid].write_page(page_id, frame.data)
                del self._frames[key]
                self.evictions += 1
                return
        raise BufferPoolError("all frames are pinned; cannot evict")

    # -- public API -------------------------------------------------------------

    def get(self, pfile: PagedFile, page_id: int, *, pin: bool = False) -> bytes:
        """Return page contents, reading through the file on a miss."""
        key = self._key(pfile, page_id)
        frame = self._frames.get(key)
        if frame is not None:
            self.hits += 1
            self._frames.move_to_end(key)
        else:
            self.misses += 1
            if len(self._frames) >= self.capacity:
                self._evict_one()
            frame = _Frame(pfile.read_page(page_id))
            self._frames[key] = frame
        if pin:
            frame.pin_count += 1
        return frame.data

    def put(self, pfile: PagedFile, page_id: int, data: bytes) -> None:
        """Install new page contents; written back on eviction or flush."""
        if len(data) > pfile.page_size:
            raise BufferPoolError("payload exceeds page size")
        key = self._key(pfile, page_id)
        frame = self._frames.get(key)
        if frame is None:
            if len(self._frames) >= self.capacity:
                self._evict_one()
            frame = _Frame(data=b"")
            self._frames[key] = frame
        frame.data = bytes(data)
        frame.dirty = True
        self._frames.move_to_end(key)

    def unpin(self, pfile: PagedFile, page_id: int) -> None:
        key = (id(pfile), page_id)
        frame = self._frames.get(key)
        if frame is None or frame.pin_count == 0:
            raise BufferPoolError(f"unpin of unpinned page {page_id}")
        frame.pin_count -= 1

    def contains(self, pfile: PagedFile, page_id: int) -> bool:
        return (id(pfile), page_id) in self._frames

    def flush(self) -> None:
        """Write back every dirty frame (keeps frames resident)."""
        for (fid, page_id), frame in self._frames.items():
            if frame.dirty:
                self._files[fid].write_page(page_id, frame.data)
                frame.dirty = False

    def clear(self) -> None:
        """Flush and drop all frames.  Fails if any page is pinned."""
        if any(f.pin_count for f in self._frames.values()):
            raise BufferPoolError("cannot clear: pinned pages present")
        self.flush()
        self._frames.clear()

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (f"BufferPool(capacity={self.capacity}, "
                f"resident={self.resident_pages}, hits={self.hits}, "
                f"misses={self.misses})")
