"""Crash recovery: replay a write-ahead journal into its data file.

Runs automatically when a journaled :class:`PagedFile` opens a journal
with entries.  The algorithm is classic redo-only recovery:

1. **Scan** the journal once, front to back, validating each record's
   framing CRC.  Page images accumulate in a *pending* set; a commit
   marker promotes the pending set to *committed* (later images of the
   same page win).  Images never followed by a commit marker are
   discarded — they were not acknowledged as durable.
2. **Classify damage.**  An invalid record with no *intact* record
   after it is a torn tail — the normal power-loss shape — and is
   truncated.  An invalid record *followed by* a parseable record means
   bytes the journal claimed durable have rotted; recovery raises
   :class:`~repro.errors.JournalCorruptError` instead of resurrecting a
   torn prefix as committed state.
3. **Replay** the committed images into the data file in page order
   (idempotent: images carry their intended CRC, and rewriting the same
   bytes is a no-op at the byte level), fsync it, then reset the
   journal to an empty header.

Recovery of a recovered file is a no-op by construction: step 3 leaves
the journal with no entries, so the next open skips recovery entirely
and the on-disk bytes are untouched.

Every step runs through the owning file's fault hooks (crash points and
I/O charging), so the crash harness can kill recovery *itself* at any
boundary and assert that recovering again converges to the same bytes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from repro.errors import JournalCorruptError, StorageError
from repro.obs import names
from repro.obs.metrics import get_registry
from repro.storage import journal as wal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.pagedfile import PagedFile


@dataclass(frozen=True)
class RecoveryReport:
    """What one recovery pass found and did."""

    file: str
    records_scanned: int
    commits_applied: int
    pages_replayed: int
    tail_truncated_bytes: int

    def is_noop(self) -> bool:
        """True when the journal was already empty — nothing changed."""
        return self.records_scanned == 0 and self.tail_truncated_bytes == 0


def _intact_record_after(raw: bytes, offset: int) -> bool:
    """Whether any *parseable* record starts at or after ``offset``.

    Used to tell interior corruption from a torn tail: a torn tail is
    garbage to the end of the file, while rot inside the durable prefix
    is followed by records that still frame and checksum correctly.  A
    false positive needs magic bytes, a consistent length *and* a
    matching CRC32 to line up inside arbitrary page data — negligible.
    """
    position = raw.find(wal.RECORD_MAGIC_BYTES, offset)
    while position != -1:
        end = position + wal.RECORD.size
        if end <= len(raw):
            _magic, length, crc = wal.RECORD.unpack(raw[position:end])
            payload = raw[end:end + length]
            if len(payload) == length and zlib.crc32(payload) == crc:
                return True
        position = raw.find(wal.RECORD_MAGIC_BYTES, position + 1)
    return False


def scan_journal(raw: bytes, *, path: str, page_size: int
                 ) -> Tuple[Dict[int, Tuple[bytes, int]], int, int, int]:
    """Parse journal bytes into committed page images.

    Returns ``(committed, records_scanned, commits, tail_bytes)`` where
    ``committed`` maps page id to ``(payload, intended CRC)`` for every
    image covered by a commit marker, and ``tail_bytes`` counts torn
    trailing bytes the caller should consider truncated.

    Raises :class:`JournalCorruptError` on interior corruption and
    :class:`StorageError` on a bad header.
    """
    if len(raw) < wal.HEADER.size:
        raise StorageError(
            f"{path}: journal shorter than its header ({len(raw)} bytes)")
    magic, version, journal_page_size = wal.HEADER.unpack(
        raw[:wal.HEADER.size])
    if magic != wal.HEADER_MAGIC:
        raise StorageError(f"{path}: not a journal file")
    if version != wal.FORMAT_VERSION:
        raise StorageError(
            f"{path}: unsupported journal format version {version} "
            f"(expected {wal.FORMAT_VERSION})")
    if journal_page_size != page_size:
        raise StorageError(
            f"{path}: journal page size {journal_page_size} does not "
            f"match file page size {page_size}")

    committed: Dict[int, Tuple[bytes, int]] = {}
    pending: Dict[int, Tuple[bytes, int]] = {}
    records = 0
    commits = 0
    offset = wal.HEADER.size

    def corrupt_or_torn(why: str, at: int) -> int:
        """Interior corruption raises; a torn tail returns its length."""
        if _intact_record_after(raw, at + 1):
            raise JournalCorruptError(
                f"{path}: corrupt journal record at byte {at} ({why}) "
                f"with intact records after it; refusing to replay")
        return len(raw) - at

    while offset < len(raw):
        if len(raw) - offset < wal.RECORD.size:
            return committed, records, commits, len(raw) - offset
        frame_magic, length, frame_crc = wal.RECORD.unpack(
            raw[offset:offset + wal.RECORD.size])
        if frame_magic != wal.RECORD_MAGIC:
            return (committed, records, commits,
                    corrupt_or_torn("bad record magic", offset))
        body_start = offset + wal.RECORD.size
        payload = raw[body_start:body_start + length]
        if len(payload) < length:
            return (committed, records, commits,
                    corrupt_or_torn("short payload", offset))
        if zlib.crc32(payload) != frame_crc:
            return (committed, records, commits,
                    corrupt_or_torn("payload CRC mismatch", offset))
        if not payload:
            raise JournalCorruptError(
                f"{path}: empty journal record at byte {offset}")
        kind = payload[0]
        if kind == wal.KIND_PAGE_IMAGE:
            if length != wal.PAGE_IMAGE.size + page_size:
                raise JournalCorruptError(
                    f"{path}: page-image record at byte {offset} has "
                    f"payload {length}, expected "
                    f"{wal.PAGE_IMAGE.size + page_size}")
            _kind, page_id, page_crc = wal.PAGE_IMAGE.unpack(
                payload[:wal.PAGE_IMAGE.size])
            pending[page_id] = (payload[wal.PAGE_IMAGE.size:], page_crc)
        elif kind == wal.KIND_COMMIT:
            if length != wal.COMMIT.size:
                raise JournalCorruptError(
                    f"{path}: commit record at byte {offset} has "
                    f"payload {length}, expected {wal.COMMIT.size}")
            committed.update(pending)
            pending.clear()
            commits += 1
        else:
            raise JournalCorruptError(
                f"{path}: unknown journal record kind {kind} at byte "
                f"{offset}")
        records += 1
        offset = body_start + length
    return committed, records, commits, 0


def recover(pfile: "PagedFile") -> RecoveryReport:
    """Replay ``pfile``'s journal; returns what was done.

    Idempotent: replaying the same committed images writes the same
    bytes, and the final journal reset makes the *next* recovery skip
    straight to a no-op.  All replay writes are charged to the disk
    model (they are real page writes — the WAL's write amplification)
    and pass the installed fault injector's crash points, so a crash
    mid-recovery is just another recoverable state.
    """
    journal = pfile.journal
    if journal is None:
        raise StorageError(f"{pfile.name}: no journal to recover")
    with open(journal.path, "rb") as fh:
        raw = fh.read()
    committed, records, commits, tail_bytes = scan_journal(
        raw, path=journal.path, page_size=pfile.page_size)

    faults = pfile.faults
    if faults is not None:
        faults.crash_point(f"recovery-scan:{pfile.name}")
    for page_id in sorted(committed):
        data, page_crc = committed[page_id]
        if faults is not None:
            faults.crash_point(f"recovery-write:{pfile.name}:{page_id}")
        pfile.replay_page(page_id, data, page_crc)
    if committed:
        if faults is not None:
            faults.crash_point(f"recovery-data-sync:{pfile.name}")
        pfile.sync_data()
    if records or tail_bytes or journal.has_entries:
        if faults is not None:
            faults.crash_point(f"recovery-journal-reset:{pfile.name}")
        journal.reset()

    # Lazily created so recoveries that find nothing register no series.
    if committed:
        get_registry().counter(names.RECOVERY_PAGES_REPLAYED,
                               file=pfile.name).inc(len(committed))
    if tail_bytes:
        get_registry().counter(names.RECOVERY_TAIL_TRUNCATIONS,
                               file=pfile.name).inc()
    return RecoveryReport(file=pfile.name, records_scanned=records,
                          commits_applied=commits,
                          pages_replayed=len(committed),
                          tail_truncated_bytes=tail_bytes)


__all__ = ["RecoveryReport", "recover", "scan_journal"]
