"""Atomic, durable file replacement for small metadata writers.

Manifests, persisted tables, and lint baselines are all
write-the-whole-file artifacts: a torn in-place rewrite leaves a file
that parses as garbage or — worse — parses cleanly as stale state.
:func:`atomic_write_bytes` gives every such writer the standard
temp-file dance:

1. write the full payload to a temporary file *in the same directory*
   (``os.replace`` must not cross filesystems);
2. flush and fsync the temporary file, so the bytes are durable before
   the name is;
3. ``os.replace`` over the destination — atomic on POSIX;
4. fsync the directory, so the rename itself survives a power loss.

Readers therefore observe either the complete old file or the complete
new one, never a prefix of either.
"""

from __future__ import annotations

import os
import tempfile


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Atomically replace ``path``'s contents with ``data``, durably."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(temp_path, path)
    except BaseException:
        # The temp file is ours alone; remove the debris before
        # re-raising (it may already be gone if replace() succeeded
        # and a later failure is unwinding).
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise
    _fsync_directory(directory)


def atomic_write_text(path: str, text: str) -> None:
    """UTF-8 convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"))


def _fsync_directory(directory: str) -> None:
    """Make a completed rename in ``directory`` durable.

    Some filesystems (and platforms) refuse ``open()`` on a directory;
    the rename is still atomic there, just not crash-durable, so this
    degrades to a no-op rather than failing the write.
    """
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        return
    finally:
        os.close(dir_fd)


__all__ = ["atomic_write_bytes", "atomic_write_text"]
