"""Bounded, deterministic retry for transient page-I/O failures.

First rung of the degradation ladder (DESIGN.md): a
:class:`~repro.errors.TransientIOError` is retried a fixed number of
times with exponential backoff charged to the *simulated* clock — no
wall-clock sleeping, so tests and the chaos harness stay fast and
reproducible.  :class:`~repro.errors.PageCorruptError` is deliberately
not retried: re-reading corrupt media returns the same bad bytes, and
the right response is the next rung (degrade to the internal LoD).

Metrics (names in ``repro.obs.names``): every retried attempt increments
``pageio_retries_total{file=...}`` and every exhausted budget increments
``pageio_giveups_total{file=...}``.  Both counters are created lazily on
the first event, so a fault-free run's metric dump is byte-identical to
one produced before this layer existed.

This module is a designated *fault boundary*: lint rule RPR008 exempts
it (together with ``repro.storage.faults``) from the silent-swallow ban,
because catching and re-dispatching failures is its purpose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import StorageError, TransientIOError
from repro.obs import names
from repro.obs.metrics import get_registry
from repro.storage.pagedfile import PagedFile

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts to make and how long to back off between them.

    ``backoff_ms(attempt)`` grows geometrically: the first retry waits
    ``base_backoff_ms``, the next ``base_backoff_ms * multiplier``, and
    so on.  Backoff is charged to the target file's simulated clock so
    resilience has a visible, reconciled latency cost.
    """

    max_attempts: int = 3
    base_backoff_ms: float = 4.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise StorageError(
                f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_backoff_ms < 0.0:
            raise StorageError(
                f"base_backoff_ms must be >= 0: {self.base_backoff_ms}")
        if self.multiplier < 1.0:
            raise StorageError(
                f"multiplier must be >= 1: {self.multiplier}")

    def backoff_ms(self, attempt: int) -> float:
        """Simulated backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise StorageError(f"attempt must be >= 1: {attempt}")
        return self.base_backoff_ms * self.multiplier ** (attempt - 1)


DEFAULT_RETRY_POLICY = RetryPolicy()


def run_with_retry(op: Callable[[], T], pfile: PagedFile,
                   policy: RetryPolicy = DEFAULT_RETRY_POLICY) -> T:
    """Run ``op`` retrying transient failures against ``pfile``.

    Fast path first: when no fault injector is installed on the file,
    transient errors cannot occur, so the operation runs bare — zero
    overhead and zero new metric series on the happy path.
    """
    if pfile.faults is None:
        return op()
    attempt = 1
    while True:
        try:
            return op()
        except TransientIOError:
            if attempt >= policy.max_attempts:
                get_registry().counter(names.PAGEIO_GIVEUPS,
                                       file=pfile.name).inc()
                raise
            get_registry().counter(names.PAGEIO_RETRIES,
                                   file=pfile.name).inc()
            pfile.charge_delay_ms(policy.backoff_ms(attempt))
            attempt += 1


__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY", "run_with_retry"]
