"""Pluggable page-replacement policies for the buffer pool.

The pool owns the frame table, pins, latches, and all locking; a policy
owns only the *ordering* decision — which resident key should be evicted
next.  The split keeps policies trivially lattice-clean: a policy is
called exclusively with the pool lock held, holds no lock of its own,
and never calls back into the pool or a file.

Two policies ship:

* :class:`LRUPolicy` — the historical behavior, bit-for-bit: insertion
  and access order reproduce the old ``OrderedDict.move_to_end`` pool
  exactly, so ``policy="lru"`` reports are byte-identical to before the
  interface existed.
* :class:`TwoQPolicy` — the 2Q algorithm (Johnson & Shasha, VLDB '94).
  First-touch pages enter a small FIFO (``A1in``); only pages re-read
  *after* falling out of the FIFO — proven re-reference, tracked by a
  ghost list of evicted keys (``A1out``) — enter the protected LRU
  (``Am``).  A burst of single-touch pages (one session scanning a cold
  route) churns the FIFO but cannot flush another session's hot working
  set out of ``Am``; that scan resistance is exactly what the
  many-session undersized-pool regime needs.

Victim *candidates* come from the policy in preference order; the pool
skips pinned frames, so pin-awareness lives in one place and a policy
never observes pins at all.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple, Union

from repro.errors import BufferPoolError
from repro.obs import names
from repro.obs.metrics import get_registry

#: Frame key: ``(file_id, page_id)`` — the pool's own key type.
KeyT = Tuple[int, int]

#: Names accepted by :func:`make_policy`.
POLICY_NAMES: Tuple[str, ...] = ("lru", "2q")


class ReplacementPolicy:
    """Eviction-order strategy; all methods run under the pool lock."""

    #: Human-readable policy name (echoed into serve reports).
    name: str = "base"

    def on_insert(self, key: KeyT) -> None:
        """A frame for ``key`` became resident."""
        raise NotImplementedError

    def on_access(self, key: KeyT) -> None:
        """A resident frame for ``key`` was hit."""
        raise NotImplementedError

    def on_evict(self, key: KeyT) -> None:
        """The pool evicted ``key`` (always a key it was told about)."""
        raise NotImplementedError

    def victims(self) -> Iterator[KeyT]:
        """Resident keys in eviction-preference order.

        The pool takes the first candidate whose frame is unpinned; a
        policy therefore yields *every* resident key eventually, or the
        pool cannot prove exhaustion.
        """
        raise NotImplementedError

    def keys(self) -> List[KeyT]:
        """All resident keys, in flush order (eviction order)."""
        raise NotImplementedError

    def clear(self) -> None:
        """Forget all resident keys (pool ``clear()``)."""
        raise NotImplementedError

    def stats(self) -> Dict[str, int]:
        """Policy-specific counters for reports (stable key order)."""
        return {}


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used — the pool's historical behavior, exactly."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[KeyT, None]" = OrderedDict()

    def on_insert(self, key: KeyT) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def on_access(self, key: KeyT) -> None:
        self._order.move_to_end(key)

    def on_evict(self, key: KeyT) -> None:
        del self._order[key]

    def victims(self) -> Iterator[KeyT]:
        return iter(list(self._order))

    def keys(self) -> List[KeyT]:
        return list(self._order)

    def clear(self) -> None:
        self._order.clear()


class TwoQPolicy(ReplacementPolicy):
    """Scan-resistant 2Q replacement.

    Parameters
    ----------
    capacity:
        The pool's frame capacity; sizes the FIFO and ghost list.
    kin_fraction:
        Target ``A1in`` size as a fraction of capacity (paper default
        ~25%).
    kout_fraction:
        Ghost-list size as a fraction of capacity (paper default ~50%).
    pool_name:
        Metrics label; promotions and ghost hits are exported per
        pool + policy.
    """

    name = "2q"

    def __init__(self, capacity: int, *, kin_fraction: float = 0.25,
                 kout_fraction: float = 0.5,
                 pool_name: str = "default") -> None:
        if capacity < 1:
            raise BufferPoolError(
                f"capacity must be >= 1, got {capacity}")
        if not 0.0 < kin_fraction < 1.0:
            raise BufferPoolError(
                f"kin_fraction must be in (0, 1), got {kin_fraction}")
        if kout_fraction <= 0.0:
            raise BufferPoolError(
                f"kout_fraction must be positive, got {kout_fraction}")
        self.kin_pages = max(1, int(capacity * kin_fraction))
        self.kout_pages = max(1, int(capacity * kout_fraction))
        #: First-touch FIFO (insertion order; accesses do not reorder).
        self._a1in: "OrderedDict[KeyT, None]" = OrderedDict()
        #: Protected LRU of proven re-referenced pages.
        self._am: "OrderedDict[KeyT, None]" = OrderedDict()
        #: Ghost list: keys recently evicted from A1in (no frame data).
        self._ghosts: "OrderedDict[KeyT, None]" = OrderedDict()
        self.promotions = 0
        self.ghost_hits = 0
        registry = get_registry()
        self._m_promotions = registry.counter(
            names.REPLACEMENT_PROMOTIONS, pool=pool_name, policy=self.name)
        self._m_ghost_hits = registry.counter(
            names.REPLACEMENT_GHOST_HITS, pool=pool_name, policy=self.name)

    def on_insert(self, key: KeyT) -> None:
        if key in self._ghosts:
            # Re-read after FIFO eviction: proven re-reference, so the
            # page skips A1in and enters the protected queue.
            del self._ghosts[key]
            self.ghost_hits += 1
            self.promotions += 1
            self._m_ghost_hits.inc()
            self._m_promotions.inc()
            self._am[key] = None
            self._am.move_to_end(key)
        else:
            self._a1in[key] = None

    def on_access(self, key: KeyT) -> None:
        if key in self._am:
            self._am.move_to_end(key)
        # Hits inside A1in do not reorder the FIFO: a correlated burst
        # of touches right after first read is not evidence of reuse
        # (that is the scan-resistance core of 2Q).

    def on_evict(self, key: KeyT) -> None:
        if key in self._a1in:
            del self._a1in[key]
            self._ghosts[key] = None
            while len(self._ghosts) > self.kout_pages:
                self._ghosts.popitem(last=False)
        elif key in self._am:
            del self._am[key]
        else:
            raise BufferPoolError(f"evict of untracked key {key!r}")

    def victims(self) -> Iterator[KeyT]:
        prefer_a1 = len(self._a1in) > self.kin_pages or not self._am
        first, second = ((self._a1in, self._am) if prefer_a1
                         else (self._am, self._a1in))
        for key in list(first):
            yield key
        for key in list(second):
            yield key

    def keys(self) -> List[KeyT]:
        return list(self._a1in) + list(self._am)

    def clear(self) -> None:
        self._a1in.clear()
        self._am.clear()
        self._ghosts.clear()

    def stats(self) -> Dict[str, int]:
        return {"ghost_hits": self.ghost_hits,
                "promotions": self.promotions}


def make_policy(policy: Union[str, ReplacementPolicy], capacity: int,
                pool_name: str) -> ReplacementPolicy:
    """Resolve a policy spec (name or instance) for one pool."""
    if isinstance(policy, ReplacementPolicy):
        return policy
    if policy == "lru":
        return LRUPolicy()
    if policy == "2q":
        return TwoQPolicy(capacity, pool_name=pool_name)
    raise BufferPoolError(
        f"unknown replacement policy {policy!r}; "
        f"choose from {sorted(POLICY_NAMES)}")
