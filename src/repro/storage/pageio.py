"""Accounted page access for the layers above ``repro.storage``.

``PagedFile.read_page`` / ``write_page`` charge the disk model, but a
call site sprinkled through the tree, scheme and baseline layers is an
accounting hazard: PR 1's phantom-read and seek-miscounting bugs all
lived at exactly such call sites, and a new one can bypass whatever
invariant the storage layer enforces next.  This module is therefore the
*only* sanctioned way for code outside ``repro.storage`` to touch pages
(lint rule RPR001 enforces it), and it buys two things:

* a single choke point where cross-cutting concerns (assertions, future
  async backends, tracing) attach once instead of per call site;
* per-layer attribution — every access increments
  ``pageio_reads_total{component=...}`` / ``pageio_writes_total{...}``,
  so reports can answer *which layer* issued the I/O, not just which
  file received it.

The wrappers deliberately fetch their counters from the *current*
registry on every call rather than caching handles: callers like
``repro profile`` swap registries mid-process (``use_registry``), and a
cached handle would keep writing to the retired registry — the same
stale-identity bug class as the ``id()``-keyed buffer frames PR 1 fixed.

The facade is also where resilience attaches (PR 3): every operation
runs under :func:`repro.storage.retry.run_with_retry`, so a transient
fault injected below is absorbed here — with bounded, simulated-clock
backoff — before any scheme or search code ever sees it.  When no fault
injector is installed the retry wrapper short-circuits to a bare call.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import names
from repro.obs.metrics import get_registry
from repro.storage.pagedfile import PagedFile
from repro.storage.retry import (DEFAULT_RETRY_POLICY, RetryPolicy,
                                 run_with_retry)


def read_page(pfile: PagedFile, page_id: int, *, component: str,
              retry: Optional[RetryPolicy] = None) -> bytes:
    """Read one page, attributing it to ``component``."""
    get_registry().counter(names.PAGEIO_READS, component=component).inc()
    return run_with_retry(lambda: pfile.read_page(page_id), pfile,
                          retry if retry is not None
                          else DEFAULT_RETRY_POLICY)


def write_page(pfile: PagedFile, page_id: int, data: bytes, *,
               component: str,
               retry: Optional[RetryPolicy] = None) -> None:
    """Write one page, attributing it to ``component``."""
    get_registry().counter(names.PAGEIO_WRITES, component=component).inc()
    run_with_retry(lambda: pfile.write_page(page_id, data), pfile,
                   retry if retry is not None else DEFAULT_RETRY_POLICY)


def append_page(pfile: PagedFile, data: bytes, *, component: str,
                retry: Optional[RetryPolicy] = None) -> int:
    """Allocate and write one page; returns the new page id.

    The allocation is not retried (it cannot fail transiently); only
    the write is, so a retry never allocates a second page.
    """
    get_registry().counter(names.PAGEIO_WRITES, component=component).inc()
    page_id = pfile.allocate()
    run_with_retry(lambda: pfile.write_page(page_id, data), pfile,
                   retry if retry is not None else DEFAULT_RETRY_POLICY)
    return page_id


def read_run(pfile: PagedFile, first_page: int, count: int, *,
             component: str,
             retry: Optional[RetryPolicy] = None) -> bytes:
    """Read ``count`` consecutive pages as one buffer.

    Retried as a unit: a transient failure mid-run re-reads the whole
    run (charging each page again), which keeps the facade's contract —
    the caller either gets the full buffer or the final error.
    """
    get_registry().counter(names.PAGEIO_READS,
                           component=component).inc(count)
    return run_with_retry(lambda: pfile.read_run(first_page, count), pfile,
                          retry if retry is not None
                          else DEFAULT_RETRY_POLICY)
