"""Accounted page access for the layers above ``repro.storage``.

``PagedFile.read_page`` / ``write_page`` charge the disk model, but a
call site sprinkled through the tree, scheme and baseline layers is an
accounting hazard: PR 1's phantom-read and seek-miscounting bugs all
lived at exactly such call sites, and a new one can bypass whatever
invariant the storage layer enforces next.  This module is therefore the
*only* sanctioned way for code outside ``repro.storage`` to touch pages
(lint rule RPR001 enforces it), and it buys two things:

* a single choke point where cross-cutting concerns (assertions, future
  async backends, tracing) attach once instead of per call site;
* per-layer attribution — every access increments
  ``pageio_reads_total{component=...}`` / ``pageio_writes_total{...}``,
  so reports can answer *which layer* issued the I/O, not just which
  file received it.

The wrappers deliberately fetch their counters from the *current*
registry on every call rather than caching handles: callers like
``repro profile`` swap registries mid-process (``use_registry``), and a
cached handle would keep writing to the retired registry — the same
stale-identity bug class as the ``id()``-keyed buffer frames PR 1 fixed.
"""

from __future__ import annotations

from repro.obs import names
from repro.obs.metrics import get_registry
from repro.storage.pagedfile import PagedFile


def read_page(pfile: PagedFile, page_id: int, *, component: str) -> bytes:
    """Read one page, attributing it to ``component``."""
    get_registry().counter(names.PAGEIO_READS, component=component).inc()
    return pfile.read_page(page_id)


def write_page(pfile: PagedFile, page_id: int, data: bytes, *,
               component: str) -> None:
    """Write one page, attributing it to ``component``."""
    get_registry().counter(names.PAGEIO_WRITES, component=component).inc()
    pfile.write_page(page_id, data)


def append_page(pfile: PagedFile, data: bytes, *, component: str) -> int:
    """Allocate and write one page; returns the new page id."""
    get_registry().counter(names.PAGEIO_WRITES, component=component).inc()
    return pfile.append_page(data)


def read_run(pfile: PagedFile, first_page: int, count: int, *,
             component: str) -> bytes:
    """Read ``count`` consecutive pages as one buffer."""
    get_registry().counter(names.PAGEIO_READS,
                           component=component).inc(count)
    return pfile.read_run(first_page, count)
