"""Seek-optimal disk layout rewriter for the V-page files.

The build lays V-pages out in ascending cell id — row-major over the
grid — but a walkthrough visits cells along *streets*.  Whenever the
path runs against the build order (the -x and -y legs of a loop), every
flip jumps backwards in the file and the disk pays the asymmetric
back-seek cost (:mod:`repro.storage.disk`).  The rewriter reorders the
V-page file so cells that are visited consecutively sit consecutively
on disk:

1. **Affinity graph** — nodes are cells; edge weights combine the
   observed walkthrough trace (consecutive flips between two cells,
   weighted heavily) with a grid-adjacency prior (weight 1), so cells
   the path never visited still land near their neighbours.
2. **Tour order** — a weighted depth-first traversal: always take the
   heaviest edge out of the current cell (ties to the smaller cell id),
   append never-reached cells in ascending id.  Deterministic.
3. **Rewrite** — the V-page file is physically reordered to the tour
   and every scheme pointer is remapped
   (:meth:`StorageScheme.apply_layout`):

   * raw codec: the file's pages are permuted in place (read all, write
     to new slots) and pointers map page -> page;
   * packed codec: all records are decoded through the old codec and
     re-encoded with a *fresh* codec in tour order — delta references
     re-resolve against the new write order — and pointers map byte
     offset -> byte offset.

Rewrites are crash-safe on journaled files: the permutation goes
through the ordinary ``pageio`` write path (journal first, pages
after), and the rewriter checkpoints the file at the end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.schemes.base import StorageScheme
from repro.errors import StorageError
from repro.obs import names
from repro.obs.metrics import get_registry
from repro.storage import pageio
from repro.storage.vpagecodec import PackedDeltaVPageCodec, VEntry

#: Weight of one observed consecutive flip in the walkthrough trace,
#: relative to the grid-adjacency prior's weight of 1.  High enough
#: that a single observation dominates the prior, low enough that the
#: prior still orders never-visited cells sensibly.
TRACE_EDGE_WEIGHT = 16


def affinity_graph(cell_trace: Sequence[int],
                   neighbors: Dict[int, List[int]]
                   ) -> Dict[Tuple[int, int], int]:
    """Symmetric edge weights between cells.

    ``cell_trace`` is the per-frame cell id sequence of a walkthrough;
    ``neighbors`` the grid 4-neighbourhood.  Keys are ``(lo, hi)`` cell
    id pairs with ``lo < hi``.
    """
    weights: Dict[Tuple[int, int], int] = {}
    for cell, adjacent in neighbors.items():
        for other in adjacent:
            if cell < other:
                weights[(cell, other)] = 1
    for previous, current in zip(cell_trace, cell_trace[1:]):
        if previous == current:
            continue
        edge = (min(previous, current), max(previous, current))
        weights[edge] = weights.get(edge, 0) + TRACE_EDGE_WEIGHT
    return weights


def tour_order(cells: Sequence[int],
               weights: Dict[Tuple[int, int], int]) -> List[int]:
    """Weighted-DFS visiting order over the affinity graph.

    Starts from the first cell the affinity graph is anchored to (the
    smallest id), repeatedly follows the heaviest edge to an unvisited
    cell (ties: smaller id), backtracks when stuck, and appends any
    unreached cells in ascending id.  Pure function of its inputs.
    """
    adjacency: Dict[int, List[Tuple[int, int]]] = {c: [] for c in cells}
    for (lo, hi), weight in weights.items():
        if lo in adjacency and hi in adjacency:
            adjacency[lo].append((weight, hi))
            adjacency[hi].append((weight, lo))
    order: List[int] = []
    visited = set()
    for start in sorted(adjacency):
        if start in visited:
            continue
        stack = [start]
        while stack:
            cell = stack[-1]
            if cell not in visited:
                visited.add(cell)
                order.append(cell)
            # Heaviest edge first; ties to the smaller neighbour id.
            candidates = [(w, n) for w, n in adjacency[cell]
                          if n not in visited]
            if candidates:
                candidates.sort(key=lambda wn: (-wn[0], wn[1]))
                stack.append(candidates[0][1])
            else:
                stack.pop()
    return order


@dataclass(frozen=True)
class RewriteReport:
    """What one scheme's rewrite did."""

    scheme: str
    cells: int
    pointers_remapped: int
    pages_moved: int


def rewrite_scheme(scheme: StorageScheme,
                   cell_order: Sequence[int]) -> RewriteReport:
    """Reorder ``scheme``'s V-page storage to ``cell_order``.

    Charges I/O on the scheme's files (callers measuring before/after
    replays reset stats around the call).  The scheme's pointer
    structures are rewritten through :meth:`StorageScheme.apply_layout`
    and its flip state is invalidated; journaled files are
    checkpointed so the rewrite is crash-consistent.
    """
    if isinstance(scheme.codec, PackedDeltaVPageCodec):
        report = _rewrite_packed(scheme, cell_order)
    else:
        report = _rewrite_raw(scheme, cell_order)
    registry = get_registry()
    registry.counter(names.LAYOUT_REWRITES,
                     file=scheme.vpage_file.name).inc()
    registry.counter(names.LAYOUT_PAGES_MOVED,
                     file=scheme.vpage_file.name).inc(report.pages_moved)
    if scheme.vpage_file.journal is not None:
        scheme.vpage_file.checkpoint()
    if (scheme.index_file is not None
            and scheme.index_file.journal is not None):
        scheme.index_file.checkpoint()
    return report


def _rewrite_raw(scheme: StorageScheme,
                 cell_order: Sequence[int]) -> RewriteReport:
    """Physically permute the raw V-page file into tour order."""
    pfile = scheme.vpage_file
    old_pages: List[int] = []
    pointer_count = 0
    for cell_id in cell_order:
        for _offset, pointer in scheme.cell_pointers(cell_id):
            old_pages.append(pointer)
            pointer_count += 1
    if len(set(old_pages)) != len(old_pages):
        raise StorageError(
            f"{pfile.name}: layout rewrite saw a shared V-page pointer")
    # Tour position within the file span the V-pages actually occupy:
    # the tour's n-th page goes into the n-th smallest original slot,
    # so a file where V-pages do not start at page 0 — or that holds
    # other pages too — is permuted strictly within its own slots.
    slots = sorted(old_pages)
    remap = {old: slots[index] for index, old in enumerate(old_pages)}
    moved = sum(1 for old, new in remap.items() if old != new)
    if moved:
        images = {old: pageio.read_page(pfile, old, component="layout")
                  for old in old_pages}
        pfile.reset_head()
        # Write in ascending destination order: the rewrite itself is
        # then one forward sweep.
        for old in sorted(images, key=lambda o: remap[o]):
            pageio.write_page(pfile, remap[old], images[old],
                              component="layout")
    scheme.apply_layout(remap)
    pfile.reset_head()
    return RewriteReport(scheme=scheme.name, cells=len(cell_order),
                         pointers_remapped=pointer_count, pages_moved=moved)


def _rewrite_packed(scheme: StorageScheme,
                    cell_order: Sequence[int]) -> RewriteReport:
    """Re-encode the packed stream in tour order with a fresh codec."""
    old_codec = scheme.codec
    assert isinstance(old_codec, PackedDeltaVPageCodec)
    # Decode everything through the *old* codec before touching the
    # file: (cell, node offset, entries) in tour order.
    decoded: List[Tuple[int, int, int, List[VEntry]]] = []
    for cell_id in cell_order:
        for offset, pointer in scheme.cell_pointers(cell_id):
            stored_offset, ventries = old_codec.read(pointer, scheme)
            if stored_offset != offset:
                raise StorageError(
                    f"{scheme.vpage_file.name}: record at {pointer} "
                    f"stores offset {stored_offset}, index says {offset}")
            decoded.append((cell_id, offset, pointer, ventries))
    new_codec = PackedDeltaVPageCodec(old_codec.page_size,
                                      old_codec.neighbors,
                                      scheme=old_codec.scheme)
    remap: Dict[int, int] = {}
    current_cell = None
    for cell_id, offset, old_pointer, ventries in decoded:
        if cell_id != current_cell:
            new_codec.begin_cell(cell_id)
            current_cell = cell_id
        remap[old_pointer] = new_codec.append(
            scheme.vpage_file, cell_id, offset, ventries)
    new_codec.finish(scheme.vpage_file)
    scheme.codec = new_codec
    scheme.apply_layout(remap)
    scheme.reset_io_head()
    moved = sum(1 for old, new in remap.items() if old != new)
    return RewriteReport(scheme=scheme.name, cells=len(cell_order),
                         pointers_remapped=len(remap), pages_moved=moved)
