"""Page-addressed storage files.

A :class:`PagedFile` is a growable array of fixed-size pages, addressed by
integer page id.  It can live purely in memory (the default for tests and
benchmarks, which keeps experiments fast and hermetic) or be backed by a
real file on disk.  Every access is charged to a shared
:class:`~repro.storage.disk.IOStats` through a
:class:`~repro.storage.disk.DiskModel`, and sequentiality is detected from
the previously accessed page id, which is what makes DFS-ordered V-page
layouts measurably cheaper.
"""

from __future__ import annotations

import itertools
import os
import struct
import threading
import zlib
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.concurrency.witness import wrap_lock
from repro.constants import PAGE_SIZE
from repro.errors import PageCorruptError, PageNotFoundError, StorageError
from repro.obs import names
from repro.obs.metrics import get_registry
from repro.storage.disk import DiskModel, IOStats
from repro.storage.journal import WriteAheadJournal, journal_path

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.faults import FaultInjector
    from repro.storage.recovery import RecoveryReport

#: Process-wide monotonic file identity.  ``id(pfile)`` is unusable as a
#: cache key because a garbage-collected file's address can be reused by
#: a new object; these ids are never reused within a process.
_FILE_IDS = itertools.count()

#: On-disk page trailer: magic ("HDOV") + CRC32 of the logical payload.
#: The magic distinguishes a real trailer from the all-zero trailer of a
#: lazily allocated (never written) page, whose zero payload is valid.
_TRAILER = struct.Struct("<II")
_TRAILER_MAGIC = 0x48444F56
_ZERO_TRAILER = bytes(_TRAILER.size)


class PagedFile:
    """A file of fixed-size pages with allocation and I/O accounting.

    Parameters
    ----------
    name:
        Identifier used in error messages and stats breakdowns.
    page_size:
        Bytes per page; defaults to :data:`repro.constants.PAGE_SIZE`.
    disk:
        Cost model; every read/write is charged through it.
    stats:
        Shared accumulator.  Pass the experiment-wide instance so that all
        files contribute to one simulated clock.
    path:
        Optional real filesystem path.  When given, pages are persisted to
        the file; otherwise pages live in an in-process dict.
    journal:
        Enable crash consistency (disk-backed files only): every write
        is appended to a write-ahead log at ``<path>.wal`` before the
        data file is touched, and opening the file replays committed
        journal entries (see :mod:`repro.storage.recovery`).  Writes
        stay in an in-memory overlay until :meth:`checkpoint` copies
        them into the data file; :meth:`commit` makes them durable.
    faults:
        Optional fault injector to install *before* recovery runs, so
        deterministic crash points cover recovery itself.

    Notes
    -----
    Disk-backed pages carry an 8-byte integrity trailer (magic + CRC32
    of the logical payload), so each physical page is ``page_size + 8``
    bytes while every API — including I/O accounting — stays in logical
    ``page_size`` units.  A mismatch on read raises
    :class:`~repro.errors.PageCorruptError`.  The in-memory backend
    keeps its checksums in a side dict and verifies them only while a
    fault injector is installed, keeping the happy path allocation-free.
    """

    #: Lattice level of ``_io_lock`` (see repro.concurrency.order): below
    #: the pool lock, above the metrics-registry lock.  This level is in
    #: BLOCKING_ALLOWED — serializing physical I/O is this lock's job.
    LOCK_LEVEL = "pagedfile"

    def __init__(self, name: str, *, page_size: int = PAGE_SIZE,
                 disk: Optional[DiskModel] = None,
                 stats: Optional[IOStats] = None,
                 path: Optional[str] = None,
                 journal: bool = False,
                 faults: Optional["FaultInjector"] = None) -> None:
        if page_size <= 0:
            raise StorageError(f"page_size must be positive, got {page_size}")
        if journal and path is None:
            raise StorageError(
                f"{name}: journaling requires a disk-backed file "
                f"(pass path=)")
        self.name = name
        self.page_size = page_size
        self.disk = disk if disk is not None else DiskModel()
        self.stats = stats if stats is not None else IOStats()
        #: Stable per-file identity (survives address reuse; see
        #: :class:`~repro.storage.buffer.BufferPool`).
        self.file_id = next(_FILE_IDS)
        registry = get_registry()
        self._m_reads = registry.counter(names.PAGEDFILE_READS, file=name)
        self._m_writes = registry.counter(names.PAGEDFILE_WRITES, file=name)
        self._m_seeks = registry.counter(names.PAGEDFILE_SEEKS, file=name)
        self._m_back_seeks = registry.counter(
            names.PAGEDFILE_BACK_SEEKS, file=name)
        self._m_forward_seeks = registry.counter(
            names.PAGEDFILE_FORWARD_SEEKS, file=name)
        self._m_sequential = registry.counter(
            names.PAGEDFILE_SEQUENTIAL, file=name)
        self._m_bytes_read = registry.counter(
            names.PAGEDFILE_BYTES_READ, file=name)
        self._m_bytes_written = registry.counter(
            names.PAGEDFILE_BYTES_WRITTEN, file=name)
        self._m_ms = registry.counter(
            names.PAGEDFILE_SIMULATED_MS, file=name)
        self._path = path
        self._mem: Dict[int, bytes] = {}
        self._crcs: Dict[int, int] = {}
        self._faults: Optional["FaultInjector"] = None
        self._fh = None
        self._num_pages = 0
        #: Physical bytes per page: logical payload plus, on disk, the
        #: integrity trailer.  Accounting always uses logical page_size.
        self._physical_page_size = (page_size if path is None
                                    else page_size + _TRAILER.size)
        self._last_accessed: Optional[int] = None
        self._closed = False
        #: Serializes page access per file: charge + fault hooks + backend
        #: read/write become one atomic step, so concurrent readers (e.g.
        #: buffer-pool miss fills from different threads) cannot interleave
        #: head tracking with the seek they are charged for.  Lock order is
        #: pool lock → file lock (see DESIGN.md §10); a file never calls
        #: back into a pool.  Sharing one IOStats between files accessed
        #: from different threads still needs external serialization — the
        #: serving scheduler provides it.
        self._io_lock = wrap_lock(threading.RLock(),
                                  level=PagedFile.LOCK_LEVEL,
                                  name=f"pagedfile:{name}")
        if path is not None:
            # "r+b" keeps seek+write semantics; append mode would force
            # every write to the end of the file regardless of seeks.
            mode = "r+b" if os.path.exists(path) else "w+b"
            self._fh = open(path, mode)
            self._fh.seek(0, os.SEEK_END)
            size = self._fh.tell()
            if size % self._physical_page_size != 0:
                raise StorageError(
                    f"{path}: size {size} is not a multiple of the "
                    f"physical page size {self._physical_page_size}")
            self._num_pages = size // self._physical_page_size
        #: WAL-before-data: journaled writes park page images here until
        #: checkpoint copies them into the data file.  Guarded by
        #: ``_io_lock``; maps page id to ``(payload, intended CRC)``.
        self._overlay: Dict[int, Tuple[bytes, int]] = {}
        self._journal: Optional[WriteAheadJournal] = None
        self._last_recovery: Optional["RecoveryReport"] = None
        if journal:
            assert path is not None
            self._journal = WriteAheadJournal(
                journal_path(path), page_size=page_size, name=name)
        # The injector goes in before recovery so the crash harness can
        # kill recovery itself at any boundary.
        if faults is not None:
            faults.install(self)
        if self._journal is not None and self._journal.has_entries:
            from repro.storage.recovery import recover
            try:
                self._last_recovery = recover(self)
            except BaseException:
                # Constructor unwinding doubles as the crash: release
                # the handles exactly as :meth:`crash` would — flushed
                # (the write-through data model) but never checkpointed.
                if self._fh is not None:
                    self._fh.flush()
                    self._fh.close()
                    self._fh = None
                self._journal.close()
                self._closed = True
                raise

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Flush, fsync and close the backend; safe to call twice.

        Durability bug fixed here: the old close dropped whatever the
        OS had buffered, so a crash right after "successful" close could
        lose pages.  ``__exit__`` after an explicit close (or a double
        ``close()``) is a no-op rather than an error — the common
        ``with``-block-plus-cleanup pattern must not raise.
        """
        with self._io_lock:
            if self._closed:
                return
            if self._journal is not None:
                self.checkpoint()
                self._journal.close()
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._fh.close()
                self._fh = None
            self._closed = True

    def crash(self) -> None:
        """Simulate a power loss: abandon state without flush paths.

        The journal drops the volatile half of its un-synced tail (see
        :meth:`WriteAheadJournal.simulate_power_loss`); the overlay and
        the in-memory backend vanish outright, as RAM does.  The data
        file is modelled *write-through* — page writes that completed
        before the crash survive — which is safe precisely because the
        journal is redo-only: committed images are replayed over
        whatever the data file holds, and uncommitted images never
        reach it (they live in the overlay until checkpoint).  See
        DESIGN.md §12.
        """
        with self._io_lock:
            if self._closed:
                return
            if self._journal is not None:
                self._journal.simulate_power_loss()
            if self._fh is not None:
                self._fh.flush()
                self._fh.close()
                self._fh = None
            self._overlay.clear()
            self._mem.clear()
            self._crcs.clear()
            self._closed = True

    def __enter__(self) -> "PagedFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"{self.name}: file is closed")

    # -- fault injection -----------------------------------------------------

    @property
    def faults(self) -> Optional["FaultInjector"]:
        """The installed fault injector, or None (the happy path)."""
        return self._faults

    @property
    def journal(self) -> Optional[WriteAheadJournal]:
        """The write-ahead journal, or None (journaling disabled)."""
        return self._journal

    @property
    def last_recovery(self) -> Optional["RecoveryReport"]:
        """What recovery did at open time; None if it had nothing to do."""
        return self._last_recovery

    def install_faults(self, injector: Optional["FaultInjector"]) -> None:
        """Attach (or, with None, detach) a fault injector.

        Prefer :meth:`FaultInjector.install`, which also tracks the file
        for a later bulk ``uninstall``.
        """
        with self._io_lock:
            self._faults = injector

    def charge_delay_ms(self, ms: float) -> None:
        """Charge extra simulated latency (fault spikes, retry backoff).

        Both ledgers move together — the shared :class:`IOStats` clock
        and the per-file metric — so ``repro profile`` reconciliation
        holds under fault injection too.
        """
        if ms < 0:
            raise StorageError(f"{self.name}: negative delay {ms}")
        with self._io_lock:
            self.stats.simulated_ms += ms
            self._m_ms.inc(ms)

    # -- allocation ------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        return self._num_pages

    @property
    def byte_size(self) -> int:
        return self._num_pages * self.page_size

    def allocate(self) -> int:
        """Allocate a fresh zeroed page; returns its page id.

        Allocation itself is free (the write that follows pays the I/O)
        and *lazy*: no zero payload is written.  Reading a page that was
        allocated but never written returns zeros; the file backend
        extends the file size with ``truncate`` (one metadata operation,
        no data write) instead of writing a zero page that the typical
        ``append_page`` caller immediately overwrites.
        """
        return self.allocate_many(1)

    def allocate_many(self, count: int) -> int:
        """Allocate ``count`` consecutive pages; returns the first id."""
        if count < 1:
            raise StorageError(f"count must be >= 1, got {count}")
        with self._io_lock:
            self._check_open()
            first = self._num_pages
            self._num_pages += count
            if self._fh is not None:
                self._fh.truncate(
                    self._num_pages * self._physical_page_size)
            return first

    # -- access ------------------------------------------------------------

    def _charge(self, page_id: int, *, write: bool) -> None:
        window = max(self.disk.readahead_pages, 1)
        # A zero delta is a repeat access to the page under the head: no
        # repositioning happens, so it must not be charged as a seek.
        sequential = (self._last_accessed is not None
                      and 0 <= page_id - self._last_accessed <= window)
        # Direction is classified against *this file's* head only: each
        # PagedFile models its own spindle, so interleaved access to
        # another file never perturbs the classification here, and a
        # cold head (first access, or after reset_head) is a forward
        # seek — the arm starts parked at the outer edge.
        backward = (not sequential and self._last_accessed is not None
                    and page_id < self._last_accessed)
        self.disk.charge(self.stats, write=write, sequential=sequential,
                         nbytes=self.page_size, backward=backward)
        if write:
            self._m_writes.inc()
            self._m_bytes_written.inc(self.page_size)
        else:
            self._m_reads.inc()
            self._m_bytes_read.inc(self.page_size)
        if sequential:
            self._m_sequential.inc()
        elif backward:
            self._m_seeks.inc()
            self._m_back_seeks.inc()
        else:
            self._m_seeks.inc()
            self._m_forward_seeks.inc()
        self._m_ms.inc(self.disk.access_cost(sequential, backward=backward))
        self._last_accessed = page_id

    def _validate(self, page_id: int) -> None:
        if not 0 <= page_id < self._num_pages:
            raise PageNotFoundError(
                f"{self.name}: page {page_id} of {self._num_pages}")

    def read_page(self, page_id: int) -> bytes:
        """Read one page, charging the disk model.

        The access is charged *before* the fault hooks run: a failed
        real I/O still pays the seek, and both ledgers must count every
        attempt or the retry layer would make I/O look free.
        """
        with self._io_lock:
            self._check_open()
            self._validate(page_id)
            self._charge(page_id, write=False)
            if self._faults is not None:
                self._faults.before_read(self, page_id)
            overlay = self._overlay.get(page_id)
            if overlay is not None:
                # Journaled write not yet checkpointed: the overlay is
                # the page's current image; the data file is stale.
                data, crc = overlay
                if self._faults is not None:
                    data = self._faults.filter_read(self, page_id, data)
                if zlib.crc32(data) != crc:
                    raise self._corrupt(page_id, "CRC mismatch")
                return data
            if self._fh is None:
                stored = self._mem.get(page_id)
                # Allocated but never written: lazily materialise zeros.
                data = (stored if stored is not None
                        else bytes(self.page_size))
                if self._faults is not None:
                    data = self._faults.filter_read(self, page_id, data)
                    self._verify_mem(page_id, data)
                return data
            self._fh.seek(page_id * self._physical_page_size)
            raw = self._fh.read(self._physical_page_size)
            if len(raw) != self._physical_page_size:
                raise self._corrupt(page_id, "short read")
            data = raw[:self.page_size]
            trailer = raw[self.page_size:]
            if self._faults is not None:
                data = self._faults.filter_read(self, page_id, data)
            self._verify_disk(page_id, data, trailer)
            return data

    def _corrupt(self, page_id: int, why: str) -> PageCorruptError:
        """Count and build (not raise) a corruption error."""
        # Lazily created so fault-free runs register no new series.
        get_registry().counter(names.PAGES_CORRUPT, file=self.name).inc()
        return PageCorruptError(
            f"{self.name}: page {page_id} corrupt ({why})")

    def _verify_disk(self, page_id: int, data: bytes,
                     trailer: bytes) -> None:
        if trailer == _ZERO_TRAILER:
            # Lazily allocated, never written: zeros are the contract.
            if data.count(0) != len(data):
                raise self._corrupt(page_id, "unwritten page not zero")
            return
        magic, crc = _TRAILER.unpack(trailer)
        if magic != _TRAILER_MAGIC:
            raise self._corrupt(page_id, "bad trailer magic")
        if crc != zlib.crc32(data):
            raise self._corrupt(page_id, "CRC mismatch")

    def _verify_mem(self, page_id: int, data: bytes) -> None:
        """Checksum check for the memory backend (faulted runs only)."""
        expected = self._crcs.get(page_id)
        if expected is None:
            if data.count(0) != len(data):
                raise self._corrupt(page_id, "unwritten page not zero")
            return
        if expected != zlib.crc32(data):
            raise self._corrupt(page_id, "CRC mismatch")

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write one full page, charging the disk model.

        The integrity trailer is computed from the payload the *caller*
        handed in, while fault filters may tear the bytes that actually
        reach the backend — which is exactly how a torn write becomes a
        detectable CRC mismatch on the next read.
        """
        with self._io_lock:
            self._check_open()
            self._validate(page_id)
            if len(data) > self.page_size:
                raise StorageError(
                    f"{self.name}: payload {len(data)} exceeds page size")
            if len(data) < self.page_size:
                data = data + bytes(self.page_size - len(data))
            self._charge(page_id, write=True)
            crc = zlib.crc32(data)
            if self._faults is not None:
                self._faults.before_write(self, page_id)
                data = self._faults.filter_write(self, page_id, data)
            if self._journal is not None:
                # WAL-before-data: the image reaches the journal now and
                # the data file only at checkpoint, after a commit
                # marker proved it durable — so every data page is
                # always either its pre-crash or post-commit image.
                self._journal.append_page_image(page_id, data, crc,
                                                faults=self._faults)
                self._overlay[page_id] = (bytes(data), crc)
                return
            self._backend_write(page_id, data, crc)

    def _backend_write(self, page_id: int, data: bytes, crc: int) -> None:
        """Raw backend write: no charging, no faults, no journal.

        Extends the file when replay targets a page past the current
        end (an allocation whose pages were journaled but whose extent
        was lost).  Callers hold ``_io_lock``.
        """
        if page_id >= self._num_pages:
            self._num_pages = page_id + 1
            if self._fh is not None:
                self._fh.truncate(
                    self._num_pages * self._physical_page_size)
        if self._fh is None:
            self._mem[page_id] = bytes(data)
            self._crcs[page_id] = crc
        else:
            self._fh.seek(page_id * self._physical_page_size)
            self._fh.write(
                data + _TRAILER.pack(_TRAILER_MAGIC, crc))

    # -- crash consistency ---------------------------------------------------

    def _require_journal(self) -> WriteAheadJournal:
        if self._journal is None:
            raise StorageError(
                f"{self.name}: not a journaled file (pass journal=True)")
        return self._journal

    def commit(self) -> None:
        """Group-commit: make every write since the last commit durable.

        Appends one commit marker covering the batch and fsyncs the
        journal once.  A commit with nothing pending is a no-op (no
        empty markers, no wasted fsync).  The data file is untouched —
        durability lives in the journal until :meth:`checkpoint`.
        """
        with self._io_lock:
            self._check_open()
            journal = self._require_journal()
            if journal.uncommitted_records == 0:
                return
            if self._faults is not None:
                self._faults.crash_point(f"journal-commit:{self.name}")
            journal.append_commit_marker()
            if self._faults is not None:
                self._faults.crash_point(f"journal-sync:{self.name}")
            journal.sync()

    def checkpoint(self) -> None:
        """Commit, copy overlay images into the data file, reset the WAL.

        Ordering is the whole point: commit marker fsync'd first (so a
        crash mid-copy replays from the journal), data file written and
        fsync'd second, journal truncated last (only once the data file
        holds everything).  Checkpoint writes are charged to the disk
        model — they are the WAL's write amplification, and hiding them
        would skew ``repro profile``'s reconciliation.
        """
        with self._io_lock:
            self._check_open()
            journal = self._require_journal()
            self.commit()
            if not self._overlay and not journal.has_entries:
                return
            for page_id in sorted(self._overlay):
                data, crc = self._overlay[page_id]
                self._charge(page_id, write=True)
                if self._faults is not None:
                    self._faults.crash_point(
                        f"checkpoint-write:{self.name}:{page_id}")
                self._backend_write(page_id, data, crc)
            if self._faults is not None:
                self._faults.crash_point(f"data-sync:{self.name}")
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())
            if self._faults is not None:
                self._faults.crash_point(f"journal-reset:{self.name}")
            journal.reset()
            self._overlay.clear()

    def replay_page(self, page_id: int, data: bytes, crc: int) -> None:
        """Apply one committed journal image (recovery only; charged)."""
        with self._io_lock:
            self._check_open()
            self._charge(page_id, write=True)
            self._backend_write(page_id, data, crc)

    def sync_data(self) -> None:
        """Flush and fsync the data file (recovery's durability barrier)."""
        with self._io_lock:
            self._check_open()
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())

    def append_page(self, data: bytes) -> int:
        """Allocate and write in one step; returns the new page id."""
        page_id = self.allocate()
        self.write_page(page_id, data)
        return page_id

    def read_run(self, first_page: int, count: int) -> bytes:
        """Read ``count`` consecutive pages as one buffer.

        The first access may seek; the rest are charged as sequential.
        """
        if count < 0:
            raise StorageError(f"count must be >= 0, got {count}")
        chunks = [self.read_page(first_page + i) for i in range(count)]
        return b"".join(chunks)

    def reset_head(self) -> None:
        """Forget the last accessed page (forces the next access to seek).

        Experiments call this between queries so each query pays a cold
        first seek, matching the paper's uncached measurement setup.
        """
        # _last_accessed is _io_lock-guarded state (_charge mutates it on
        # every access); resetting it unlocked raced concurrent reads.
        with self._io_lock:
            self._last_accessed = None

    def __repr__(self) -> str:
        kind = "file" if self._fh is not None else "mem"
        return (f"PagedFile({self.name!r}, pages={self._num_pages}, "
                f"page_size={self.page_size}, backend={kind})")
