"""Page-addressed storage files.

A :class:`PagedFile` is a growable array of fixed-size pages, addressed by
integer page id.  It can live purely in memory (the default for tests and
benchmarks, which keeps experiments fast and hermetic) or be backed by a
real file on disk.  Every access is charged to a shared
:class:`~repro.storage.disk.IOStats` through a
:class:`~repro.storage.disk.DiskModel`, and sequentiality is detected from
the previously accessed page id, which is what makes DFS-ordered V-page
layouts measurably cheaper.
"""

from __future__ import annotations

import itertools
import os
from typing import Dict, Optional

from repro.constants import PAGE_SIZE
from repro.errors import PageNotFoundError, StorageError
from repro.obs import names
from repro.obs.metrics import get_registry
from repro.storage.disk import DiskModel, IOStats

#: Process-wide monotonic file identity.  ``id(pfile)`` is unusable as a
#: cache key because a garbage-collected file's address can be reused by
#: a new object; these ids are never reused within a process.
_FILE_IDS = itertools.count()


class PagedFile:
    """A file of fixed-size pages with allocation and I/O accounting.

    Parameters
    ----------
    name:
        Identifier used in error messages and stats breakdowns.
    page_size:
        Bytes per page; defaults to :data:`repro.constants.PAGE_SIZE`.
    disk:
        Cost model; every read/write is charged through it.
    stats:
        Shared accumulator.  Pass the experiment-wide instance so that all
        files contribute to one simulated clock.
    path:
        Optional real filesystem path.  When given, pages are persisted to
        the file; otherwise pages live in an in-process dict.
    """

    def __init__(self, name: str, *, page_size: int = PAGE_SIZE,
                 disk: Optional[DiskModel] = None,
                 stats: Optional[IOStats] = None,
                 path: Optional[str] = None) -> None:
        if page_size <= 0:
            raise StorageError(f"page_size must be positive, got {page_size}")
        self.name = name
        self.page_size = page_size
        self.disk = disk if disk is not None else DiskModel()
        self.stats = stats if stats is not None else IOStats()
        #: Stable per-file identity (survives address reuse; see
        #: :class:`~repro.storage.buffer.BufferPool`).
        self.file_id = next(_FILE_IDS)
        registry = get_registry()
        self._m_reads = registry.counter(names.PAGEDFILE_READS, file=name)
        self._m_writes = registry.counter(names.PAGEDFILE_WRITES, file=name)
        self._m_seeks = registry.counter(names.PAGEDFILE_SEEKS, file=name)
        self._m_sequential = registry.counter(
            names.PAGEDFILE_SEQUENTIAL, file=name)
        self._m_bytes_read = registry.counter(
            names.PAGEDFILE_BYTES_READ, file=name)
        self._m_bytes_written = registry.counter(
            names.PAGEDFILE_BYTES_WRITTEN, file=name)
        self._m_ms = registry.counter(
            names.PAGEDFILE_SIMULATED_MS, file=name)
        self._path = path
        self._mem: Dict[int, bytes] = {}
        self._fh = None
        self._num_pages = 0
        self._last_accessed: Optional[int] = None
        self._closed = False
        if path is not None:
            # "r+b" keeps seek+write semantics; append mode would force
            # every write to the end of the file regardless of seeks.
            mode = "r+b" if os.path.exists(path) else "w+b"
            self._fh = open(path, mode)
            self._fh.seek(0, os.SEEK_END)
            size = self._fh.tell()
            if size % page_size != 0:
                raise StorageError(
                    f"{path}: size {size} is not a multiple of page_size")
            self._num_pages = size // page_size

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._closed = True

    def __enter__(self) -> "PagedFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"{self.name}: file is closed")

    # -- allocation ------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        return self._num_pages

    @property
    def byte_size(self) -> int:
        return self._num_pages * self.page_size

    def allocate(self) -> int:
        """Allocate a fresh zeroed page; returns its page id.

        Allocation itself is free (the write that follows pays the I/O)
        and *lazy*: no zero payload is written.  Reading a page that was
        allocated but never written returns zeros; the file backend
        extends the file size with ``truncate`` (one metadata operation,
        no data write) instead of writing a zero page that the typical
        ``append_page`` caller immediately overwrites.
        """
        return self.allocate_many(1)

    def allocate_many(self, count: int) -> int:
        """Allocate ``count`` consecutive pages; returns the first id."""
        if count < 1:
            raise StorageError(f"count must be >= 1, got {count}")
        self._check_open()
        first = self._num_pages
        self._num_pages += count
        if self._fh is not None:
            self._fh.truncate(self._num_pages * self.page_size)
        return first

    # -- access ------------------------------------------------------------

    def _charge(self, page_id: int, *, write: bool) -> None:
        window = max(self.disk.readahead_pages, 1)
        # A zero delta is a repeat access to the page under the head: no
        # repositioning happens, so it must not be charged as a seek.
        sequential = (self._last_accessed is not None
                      and 0 <= page_id - self._last_accessed <= window)
        self.disk.charge(self.stats, write=write, sequential=sequential,
                         nbytes=self.page_size)
        if write:
            self._m_writes.inc()
            self._m_bytes_written.inc(self.page_size)
        else:
            self._m_reads.inc()
            self._m_bytes_read.inc(self.page_size)
        if sequential:
            self._m_sequential.inc()
        else:
            self._m_seeks.inc()
        self._m_ms.inc(self.disk.access_cost(sequential))
        self._last_accessed = page_id

    def _validate(self, page_id: int) -> None:
        if not 0 <= page_id < self._num_pages:
            raise PageNotFoundError(
                f"{self.name}: page {page_id} of {self._num_pages}")

    def read_page(self, page_id: int) -> bytes:
        """Read one page, charging the disk model."""
        self._check_open()
        self._validate(page_id)
        self._charge(page_id, write=False)
        if self._fh is None:
            data = self._mem.get(page_id)
            # Allocated but never written: lazily materialise zeros.
            return data if data is not None else bytes(self.page_size)
        self._fh.seek(page_id * self.page_size)
        data = self._fh.read(self.page_size)
        if len(data) != self.page_size:
            raise StorageError(f"{self.name}: short read at page {page_id}")
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write one full page, charging the disk model."""
        self._check_open()
        self._validate(page_id)
        if len(data) > self.page_size:
            raise StorageError(
                f"{self.name}: payload {len(data)} exceeds page size")
        if len(data) < self.page_size:
            data = data + bytes(self.page_size - len(data))
        self._charge(page_id, write=True)
        if self._fh is None:
            self._mem[page_id] = bytes(data)
        else:
            self._fh.seek(page_id * self.page_size)
            self._fh.write(data)

    def append_page(self, data: bytes) -> int:
        """Allocate and write in one step; returns the new page id."""
        page_id = self.allocate()
        self.write_page(page_id, data)
        return page_id

    def read_run(self, first_page: int, count: int) -> bytes:
        """Read ``count`` consecutive pages as one buffer.

        The first access may seek; the rest are charged as sequential.
        """
        if count < 0:
            raise StorageError(f"count must be >= 0, got {count}")
        chunks = [self.read_page(first_page + i) for i in range(count)]
        return b"".join(chunks)

    def reset_head(self) -> None:
        """Forget the last accessed page (forces the next access to seek).

        Experiments call this between queries so each query pays a cold
        first seek, matching the paper's uncached measurement setup.
        """
        self._last_accessed = None

    def __repr__(self) -> str:
        kind = "file" if self._fh is not None else "mem"
        return (f"PagedFile({self.name!r}, pages={self._num_pages}, "
                f"page_size={self.page_size}, backend={kind})")
