"""Blob store for heavy-weight model data.

Object LoDs and internal LoDs are "heavy-weight" data in the paper: the
dominant I/O cost of a visibility query is fetching them.  The store
allocates whole page runs per blob so a fetch is one seek plus a
sequential scan, and it records logical byte sizes separately so dataset
sizes can be modelled at full scale (400 MB–1.6 GB) while the simulator
optionally stores scaled-down payloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import StorageError
from repro.storage.pagedfile import PagedFile


@dataclass(frozen=True)
class BlobRef:
    """Location and size of one stored blob."""

    blob_id: int
    first_page: int
    num_pages: int
    logical_bytes: int


class ObjectStore:
    """Append-only blob store over a :class:`PagedFile`.

    Parameters
    ----------
    pfile:
        Backing paged file (shares the experiment's disk model and stats).
    scale:
        Physical-payload scale factor in (0, 1].  A blob declared with
        ``logical_bytes = n`` occupies ``ceil(n * scale / page_size)``
        pages (at least 1).  Experiments that model multi-GB datasets use
        a small scale so runs stay laptop-sized; *reported* sizes always
        use ``logical_bytes``.
    """

    def __init__(self, pfile: PagedFile, *, scale: float = 1.0) -> None:
        if not 0.0 < scale <= 1.0:
            raise StorageError(f"scale must be in (0, 1], got {scale}")
        self.pfile = pfile
        self.scale = scale
        self._blobs: Dict[int, BlobRef] = {}
        self._next_id = 0

    # -- write path ------------------------------------------------------------

    def put(self, logical_bytes: int, payload: Optional[bytes] = None) -> BlobRef:
        """Store a blob of modelled size ``logical_bytes``.

        ``payload`` is optional real content; when omitted, zero pages are
        written (the experiments only need sizes and I/O counts).
        """
        if logical_bytes < 0:
            raise StorageError(f"negative blob size: {logical_bytes}")
        physical = max(int(math.ceil(logical_bytes * self.scale)), 1)
        num_pages = max(int(math.ceil(physical / self.pfile.page_size)), 1)
        first = self.pfile.allocate_many(num_pages)
        if payload is not None:
            for i in range(num_pages):
                chunk = payload[i * self.pfile.page_size:
                                (i + 1) * self.pfile.page_size]
                self.pfile.write_page(first + i, chunk)
        ref = BlobRef(self._next_id, first, num_pages, logical_bytes)
        self._blobs[ref.blob_id] = ref
        self._next_id += 1
        return ref

    # -- read path ------------------------------------------------------------

    def ref(self, blob_id: int) -> BlobRef:
        try:
            return self._blobs[blob_id]
        except KeyError:
            raise StorageError(f"unknown blob id {blob_id}") from None

    def fetch(self, blob_id: int) -> bytes:
        """Read the blob's pages (one seek + sequential run), returning the
        raw page bytes.  The point of calling this is the charged I/O."""
        blob = self.ref(blob_id)
        return self.pfile.read_run(blob.first_page, blob.num_pages)

    def fetch_prefix(self, blob_id: int, logical_bytes: int) -> int:
        """Read a prefix of the blob covering ``logical_bytes`` of content.

        Models progressive LoDs: a coarse representation is a prefix of
        the finest one, so reading at a lower detail level costs
        proportionally fewer pages.  Returns the number of pages read.
        """
        blob = self.ref(blob_id)
        if logical_bytes < 0:
            raise StorageError(f"negative prefix size: {logical_bytes}")
        logical_bytes = min(logical_bytes, blob.logical_bytes)
        physical = max(int(math.ceil(logical_bytes * self.scale)), 1)
        pages = min(max(int(math.ceil(physical / self.pfile.page_size)), 1),
                    blob.num_pages)
        self.pfile.read_run(blob.first_page, pages)
        return pages

    def fetch_cost_pages(self, blob_id: int) -> int:
        """Number of page I/Os a full fetch would incur (no charge)."""
        return self.ref(blob_id).num_pages

    # -- stats ------------------------------------------------------------

    @property
    def num_blobs(self) -> int:
        return len(self._blobs)

    @property
    def logical_bytes_total(self) -> int:
        return sum(b.logical_bytes for b in self._blobs.values())

    @property
    def physical_bytes_total(self) -> int:
        return sum(b.num_pages for b in self._blobs.values()) * self.pfile.page_size

    def __repr__(self) -> str:
        return (f"ObjectStore(blobs={self.num_blobs}, "
                f"logical={self.logical_bytes_total}B, scale={self.scale})")
