"""Seeded, deterministic fault injection for :class:`PagedFile`.

Production storage fails; the paper's V-pages are exactly the data most
exposed to it (every flip and every visible node touches one).  This
module simulates those failures so the degradation ladder (retry →
internal LoD → fatal; see DESIGN.md) can be exercised on every PR:

* ``read-error`` / ``write-error`` — transient :class:`TransientIOError`
  raised before the backend is touched (the access is still charged, as
  a real failed I/O still spins the disk);
* ``bit-flip`` — one random payload bit flipped on the way back from a
  read, caught by the CRC trailer as :class:`PageCorruptError`;
* ``torn-write`` — only a prefix of the payload reaches the medium while
  the trailer CRC describes the full page, so the *next read* of that
  page surfaces the corruption — the classic power-loss failure shape;
* ``latency`` — a simulated-clock latency spike charged to the file's
  :class:`~repro.storage.disk.IOStats`;
* ``fail-after`` — every matching operation past the first ``after_ops``
  fails, modelling a device that drops off the bus mid-session.

Orthogonal to the plan rules, the injector also carries *deterministic
crash points*: :meth:`FaultInjector.crash_after_ops` arms a countdown,
and the ``n``-th I/O boundary thereafter raises a typed
:class:`~repro.errors.SimulatedCrash` *before* the boundary's operation
runs.  Boundaries are every page read/write plus every journal commit,
sync, checkpoint and recovery step, so a sweep over ``n`` visits every
state a power loss could leave behind (``repro crash`` does exactly
that).  A crash is not a fault rule on purpose: it consumes no RNG, so
arming it never perturbs the plan's fault sequence.

Everything is driven by one ``random.Random(seed)``, and replays are
single-threaded, so the same plan + seed + workload reproduces the
identical fault sequence (the chaos CI job diffs two runs to prove it).

This module is a designated *fault boundary*: lint rule RPR008 exempts
it (together with ``repro.storage.retry``) from the ban on swallowing
exceptions, because absorbing and transmuting failures is its job.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import SimulatedCrash, StorageError, TransientIOError
from repro.obs import names
from repro.obs.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.pagedfile import PagedFile

#: The fault kinds a :class:`FaultRule` may carry.
FAULT_KINDS = ("read-error", "write-error", "torn-write", "bit-flip",
               "latency", "fail-after")


@dataclass(frozen=True)
class FaultRule:
    """One fault source: what to inject, where, how often.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    match:
        Substring of the target :class:`PagedFile` name (``""`` matches
        every file).  Built files are named ``tree``, ``models``,
        ``vpages-<scheme>`` and ``vindex-<scheme>``.
    rate:
        Probability that a matching operation is hit (ignored by
        ``fail-after``, which is a deterministic threshold).
    after_ops:
        For ``fail-after``: matching operations allowed before the file
        starts failing.
    latency_ms:
        For ``latency``: simulated milliseconds added per hit.
    times:
        Optional cap on injections from this rule (``None`` = unbounded).
        ``times=1`` expresses "fail exactly once, then recover" — the
        shape a retry must survive.
    """

    kind: str
    match: str = ""
    rate: float = 1.0
    after_ops: int = 0
    latency_ms: float = 0.0
    times: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise StorageError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {sorted(FAULT_KINDS)}")
        if not 0.0 <= self.rate <= 1.0:
            raise StorageError(f"fault rate must be in [0, 1]: {self.rate}")
        if self.after_ops < 0:
            raise StorageError(f"after_ops must be >= 0: {self.after_ops}")
        if self.latency_ms < 0.0:
            raise StorageError(
                f"latency_ms must be >= 0: {self.latency_ms}")
        if self.times is not None and self.times < 1:
            raise StorageError(f"times must be >= 1: {self.times}")


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered collection of fault rules."""

    name: str
    rules: Tuple[FaultRule, ...]

    def __post_init__(self) -> None:
        if not self.rules:
            raise StorageError(f"fault plan {self.name!r} has no rules")


class FaultInjector:
    """Applies a :class:`FaultPlan` to one or more paged files.

    The injector owns the only RNG, so a fixed ``(plan, seed, workload)``
    triple yields a byte-identical fault sequence.  Install it with
    :meth:`install`; remove it with :meth:`uninstall` (shared test
    fixtures must always uninstall, or faults leak into later tests).
    """

    def __init__(self, plan: Optional[FaultPlan] = None, *,
                 seed: int) -> None:
        self.plan = plan
        self.seed = seed
        self._rng = random.Random(seed)
        #: Injection count per fault kind (for reports).
        self.injected: Dict[str, int] = {}
        #: Plan rules, or none — a plan-less injector is a pure
        #: crash-point source for the crash harness.
        self._rules: Tuple[FaultRule, ...] = \
            () if plan is None else plan.rules
        self._plan_name = plan.name if plan is not None else "crash-only"
        self._rule_hits: List[int] = [0] * len(self._rules)
        self._ops_per_file: Dict[str, int] = {}
        self._installed: List["PagedFile"] = []
        self._crash_after: Optional[int] = None
        self._crash_ops = 0
        #: Ordered labels of every boundary seen while armed — the
        #: crash harness probes a workload once to learn its matrix.
        self.crash_trace: List[str] = []

    # -- wiring ------------------------------------------------------------

    def install(self, *pfiles: "PagedFile") -> None:
        """Attach this injector to ``pfiles`` (idempotent per file)."""
        for pfile in pfiles:
            if pfile.faults is not None and pfile.faults is not self:
                raise StorageError(
                    f"{pfile.name}: another fault injector is installed")
            pfile.install_faults(self)
            if pfile not in self._installed:
                self._installed.append(pfile)

    def uninstall(self) -> None:
        """Detach from every installed file."""
        for pfile in self._installed:
            if pfile.faults is self:
                pfile.install_faults(None)
        self._installed.clear()

    def total_injected(self) -> int:
        return sum(self.injected.values())

    # -- deterministic crash points ------------------------------------------

    def crash_after_ops(self, n: Optional[int]) -> None:
        """Arm (or with None disarm) the crash countdown.

        With ``n``, the ``n``-th I/O boundary after this call raises
        :class:`SimulatedCrash` before its operation runs; boundaries
        ``1 .. n-1`` execute normally and are recorded in
        :attr:`crash_trace`.
        """
        if n is not None and n < 1:
            raise StorageError(f"crash_after_ops must be >= 1, got {n}")
        self._crash_after = n
        self._crash_ops = 0
        self.crash_trace = []

    def crash_point(self, label: str) -> None:
        """One I/O boundary: count it, and crash if the countdown hit.

        A no-op unless :meth:`crash_after_ops` armed the countdown, so
        the hot path of plan-only injection never pays for it.
        """
        if self._crash_after is None:
            return
        self._crash_ops += 1
        self.crash_trace.append(label)
        if self._crash_ops >= self._crash_after:
            self.injected["crash"] = self.injected.get("crash", 0) + 1
            # Lazily created: fault-free runs register no new series.
            get_registry().counter(names.CRASHES_INJECTED).inc()
            raise SimulatedCrash(
                f"simulated crash at I/O boundary {self._crash_ops} "
                f"({label})")

    # -- rule machinery ------------------------------------------------------

    def _record(self, index: int, kind: str) -> None:
        self._rule_hits[index] += 1
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def _fires(self, index: int, rule: FaultRule, name: str) -> bool:
        """Whether ``rule`` hits this operation on file ``name``.

        Only called for rules whose ``match`` accepted the file, and the
        RNG is only consumed for probabilistic rules — keeping the
        random stream a pure function of the matching-operation
        sequence.
        """
        if rule.times is not None and self._rule_hits[index] >= rule.times:
            return False
        if rule.kind == "fail-after":
            return self._ops_per_file.get(name, 0) > rule.after_ops
        return self._rng.random() < rule.rate

    def _before(self, pfile: "PagedFile", *, write: bool) -> None:
        """Run the control-path rules (errors, latency) for one access.

        Payload rules (``bit-flip``, ``torn-write``) are handled by the
        filter hooks so each rule rolls the RNG at most once per access.
        """
        name = pfile.name
        verb = "write" if write else "read"
        # The crash point comes first: a crash models the process dying
        # *before* the operation, so the op must not count or fire rules.
        self.crash_point(f"{verb}:{name}")
        self._ops_per_file[name] = self._ops_per_file.get(name, 0) + 1
        for index, rule in enumerate(self._rules):
            if rule.kind in ("bit-flip", "torn-write"):
                continue
            if rule.kind == "read-error" and write:
                continue
            if rule.kind == "write-error" and not write:
                continue
            if rule.match and rule.match not in name:
                continue
            if not self._fires(index, rule, name):
                continue
            self._record(index, rule.kind)
            if rule.kind == "latency":
                pfile.charge_delay_ms(rule.latency_ms)
            elif rule.kind == "fail-after":
                raise TransientIOError(
                    f"{name}: device gone after {rule.after_ops} ops "
                    f"(fault plan {self._plan_name!r})")
            else:
                raise TransientIOError(
                    f"{name}: injected transient {verb} error "
                    f"(fault plan {self._plan_name!r})")

    def _filter(self, pfile: "PagedFile", data: bytes, kind: str) -> bytes:
        """Run the payload rules of ``kind`` against one page image."""
        for index, rule in enumerate(self._rules):
            if rule.kind != kind:
                continue
            if rule.match and rule.match not in pfile.name:
                continue
            if not self._fires(index, rule, pfile.name):
                continue
            self._record(index, rule.kind)
            if kind == "bit-flip":
                data = self._flip_bit(data)
            else:
                data = self._tear(data)
        return data

    def _flip_bit(self, data: bytes) -> bytes:
        buf = bytearray(data)
        bit = self._rng.randrange(max(len(buf), 1) * 8)
        buf[bit // 8] ^= 1 << (bit % 8)
        return bytes(buf)

    @staticmethod
    def _tear(data: bytes) -> bytes:
        half = len(data) // 2
        return data[:half] + bytes(len(data) - half)

    # -- PagedFile hooks ------------------------------------------------------

    def before_read(self, pfile: "PagedFile", page_id: int) -> None:
        """May raise or charge latency; runs after the access is charged."""
        self._before(pfile, write=False)

    def filter_read(self, pfile: "PagedFile", page_id: int,
                    data: bytes) -> bytes:
        """Corrupt the payload on its way back from the backend."""
        return self._filter(pfile, data, "bit-flip")

    def before_write(self, pfile: "PagedFile", page_id: int) -> None:
        self._before(pfile, write=True)

    def filter_write(self, pfile: "PagedFile", page_id: int,
                     data: bytes) -> bytes:
        """Corrupt the payload on its way to the backend (torn write)."""
        return self._filter(pfile, data, "torn-write")

    def filter_journal(self, name: str, payload: bytes) -> bytes:
        """Corrupt a journal record on its way into the WAL (bit rot).

        Applies the plan's ``bit-flip`` rules against the journal's own
        match name (``<file>.wal``), *after* the record's framing CRC
        was computed — so a hit becomes the CRC mismatch recovery must
        classify as interior corruption or a torn tail.
        """
        for index, rule in enumerate(self._rules):
            if rule.kind != "bit-flip":
                continue
            if rule.match and rule.match not in name:
                continue
            if not self._fires(index, rule, name):
                continue
            self._record(index, rule.kind)
            payload = self._flip_bit(payload)
        return payload

    def __repr__(self) -> str:
        return (f"FaultInjector(plan={self._plan_name!r}, "
                f"seed={self.seed}, injected={self.total_injected()})")


# -- named plans ------------------------------------------------------------

_NAMED_PLANS: Dict[str, FaultPlan] = {
    # Flaky-but-recoverable reads on V-page and index files: the retry
    # layer should absorb almost all of these.
    "transient-reads": FaultPlan("transient-reads", (
        FaultRule("read-error", match="vpages", rate=0.10),
        FaultRule("read-error", match="vindex", rate=0.05),
    )),
    # Silent media corruption on V-pages: CRC catches it, search
    # degrades the node to its internal LoD.
    "corrupt-vpages": FaultPlan("corrupt-vpages", (
        FaultRule("bit-flip", match="vpages", rate=0.08),
    )),
    # A congested device: latency spikes on every file, nothing fails.
    "slow-disk": FaultPlan("slow-disk", (
        FaultRule("latency", rate=0.20, latency_ms=25.0),
    )),
    # The V-page device drops off the bus mid-session; every flip and
    # visible node afterwards must degrade.  (The threshold is low on
    # purpose: a small-scale session issues only a few dozen V-page
    # ops, and the plan must actually black out within one.)
    "vpage-blackout": FaultPlan("vpage-blackout", (
        FaultRule("fail-after", match="vpages", after_ops=10),
    )),
    # The CI plan: transient errors (exercises retry), corruption
    # (exercises degrade) and latency (exercises the simulated clock),
    # all at rates that leave the R-tree file untouched.
    "aggressive": FaultPlan("aggressive", (
        FaultRule("read-error", match="vpages", rate=0.15),
        FaultRule("read-error", match="vindex", rate=0.10),
        FaultRule("bit-flip", match="vpages", rate=0.08),
        FaultRule("latency", rate=0.10, latency_ms=10.0),
    )),
}


def plan_names() -> List[str]:
    """Sorted names of the built-in fault plans."""
    return sorted(_NAMED_PLANS)


def named_plan(name: str) -> FaultPlan:
    """Look up a built-in plan; raises :class:`StorageError` if unknown."""
    plan = _NAMED_PLANS.get(name)
    if plan is None:
        raise StorageError(
            f"unknown fault plan {name!r}; choose from {plan_names()}")
    return plan


__all__ = ["FAULT_KINDS", "FaultRule", "FaultPlan", "FaultInjector",
           "named_plan", "plan_names"]
