"""Versioned V-page codecs: the only readers/writers of V-page bytes.

Two codecs share one interface:

* :class:`RawVPageCodec` — the seed layout: one V-page per disk page,
  encoded with the fixed-width serializer record.  Pointers are page
  ids.  Byte-for-byte identical to the pre-codec behaviour.
* :class:`PackedDeltaVPageCodec` — a packed record stream with per-cell
  delta compression.  Pointers are *byte offsets* into the stream, so
  many records share a page and ``bytes_read`` reflects the compressed
  footprint exactly (page-granularity charging over far fewer pages).

Lint rule RPR014 makes this module (plus the serializer that owns the
raw byte layout) the only place allowed to call
``encode_vpage``/``decode_vpage``: every scheme reads V-pages through a
codec, so a format change — or a corruption check — lands in one place.

Packed record layout (version 2, little-endian, varint = unsigned
LEB128 capped at 5 bytes):

========================  ==================================================
field                     bytes
========================  ==================================================
version                   u8, always ``2``
flags                     u8, bit 0 = delta-encoded (all other bits 0)
node offset               varint
entry count               varint
ref pointer               varint, *delta records only*: byte offset of the
                          self-encoded base record (reference chain depth
                          is exactly 1 — the decoder refuses deeper chains)
payload                   self: per entry ``f32 DoV + varint NVO``;
                          delta: ``varint ndiff`` then per changed entry
                          ``varint index gap + f32 DoV + varint NVO``
                          (gaps are ``index - prev_index - 1``; the first
                          gap is the absolute index)
CRC32                     u32 over all preceding record bytes
========================  ==================================================

Delta encoding exploits what "Scalable Visibility Color Map
Construction" observes: nearby viewpoints share most of their visible
set, so a cell's V-page usually differs from a grid-adjacent neighbour's
in a handful of entries.  The writer designates, per cell, the most
recently *written* grid-adjacent cell as the reference — a rule that
holds under any write order (build order or a layout-rewrite tour), and
falls back to self-encoding whenever the delta would not be smaller or
the base record is itself a delta.  Entry lists are positional and
structurally identical across cells (one V-entry per tree-node entry),
so an index diff is well-defined.

Corruption never decodes silently: every record is CRC-covered, every
varint is bounds-checked against the stream, and any parse failure —
bad version, bad flags, chain depth, out-of-range DoV/NVO, truncation —
raises :class:`~repro.errors.PageCorruptError`, which the search layer
degrades exactly like a page-trailer CRC failure.
"""

from __future__ import annotations

import abc
import struct
import zlib
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from repro.errors import PageCorruptError, SchemeError
from repro.obs import names
from repro.obs.metrics import get_registry
from repro.storage import pageio
from repro.storage.pagedfile import PagedFile
from repro.storage.serializer import decode_vpage, encode_vpage

#: Packed record format version (raw pages carry no version byte; their
#: layout predates the codec and is fixed by the serializer).
PACKED_VERSION = 2
#: flags bit 0: the payload is a diff against a reference record.
_FLAG_DELTA = 0x01

_F32 = struct.Struct("<f")
_CRC = struct.Struct("<I")

#: One V-entry, ``(DoV, NVO)`` — structurally the same alias as
#: ``repro.core.vpage.VEntry``, redeclared here so the storage layer
#: does not import upward into ``repro.core``.
VEntry = Tuple[float, int]


class PageReader(Protocol):
    """Read access to the V-page file, supplied by the calling scheme.

    The scheme routes this through its serving page cache and, for
    packed codecs, its small read-through page cache — so the codec
    never decides *whether* a page read is charged, only which pages a
    record needs.
    """

    def vpage_page(self, page_id: int) -> bytes:
        ...


class VPageCodec(abc.ABC):
    """Versioned encoder/decoder between V-entries and V-page bytes."""

    kind: str = "abstract"
    #: Whether pointers are byte offsets into a packed stream (True) or
    #: page ids (False).
    packed: bool = False

    def begin_cell(self, cell_id: int) -> None:
        """Writer hook: the next ``append`` calls belong to ``cell_id``."""
        return None

    @abc.abstractmethod
    def append(self, vpage_file: PagedFile, cell_id: int, node_offset: int,
               ventries: Sequence[VEntry]) -> int:
        """Encode and store one V-page; returns its pointer."""

    def finish(self, vpage_file: PagedFile) -> None:
        """Writer hook: all cells appended; flush any buffered state."""
        return None

    @abc.abstractmethod
    def read(self, pointer: int, reader: PageReader
             ) -> Tuple[int, List[VEntry]]:
        """Decode the V-page at ``pointer``; returns
        ``(node_offset, ventries)``."""

    @abc.abstractmethod
    def storage_vpage_bytes(self, page_size: int, total_vpages: int) -> int:
        """On-disk bytes the V-page structure occupies (Table 2)."""

    @abc.abstractmethod
    def compression_stats(self) -> Dict[str, float]:
        """Raw-vs-encoded byte accounting for the profile/layout report."""


class RawVPageCodec(VPageCodec):
    """Seed layout: one fixed-width V-page record per disk page."""

    kind = "raw"
    packed = False

    def append(self, vpage_file: PagedFile, cell_id: int, node_offset: int,
               ventries: Sequence[VEntry]) -> int:
        payload = self.encode_page(node_offset, ventries,
                                   vpage_file.page_size)
        return pageio.append_page(vpage_file, payload, component="schemes")

    def read(self, pointer: int, reader: PageReader
             ) -> Tuple[int, List[VEntry]]:
        return self.decode_page(reader.vpage_page(pointer))

    # The horizontal scheme writes at computed page ids instead of
    # appending, so the raw codec also exposes the bare byte codec.

    def encode_page(self, node_offset: int, ventries: Sequence[VEntry],
                    page_size: int) -> bytes:
        return encode_vpage(node_offset, ventries, page_size)

    def decode_page(self, data: bytes) -> Tuple[int, List[VEntry]]:
        return decode_vpage(data)

    def storage_vpage_bytes(self, page_size: int, total_vpages: int) -> int:
        return page_size * total_vpages

    def compression_stats(self) -> Dict[str, float]:
        return {"codec": self.kind, "records": 0, "self_records": 0,
                "delta_records": 0, "raw_bytes": 0, "encoded_bytes": 0,
                "ratio": 1.0}


def _encode_varint(value: int) -> bytes:
    if value < 0:
        raise SchemeError(f"varint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


#: Quantized V-entry: (f32 bit pattern of the DoV, NVO).  Comparing bit
#: patterns, not floats, makes "unchanged vs the reference" exact — the
#: raw codec stores f32 too, so decode returns identical values either
#: way (RPR005-safe: this is bit equality, not float tolerance).
_QEntry = Tuple[bytes, int]


def _quantize(ventries: Sequence[VEntry]) -> List[_QEntry]:
    quantized: List[_QEntry] = []
    for dov, nvo in ventries:
        if not 0.0 <= dov <= 1.0:
            raise SchemeError(f"DoV out of [0, 1]: {dov}")
        if nvo < 0:
            raise SchemeError(f"negative NVO: {nvo}")
        quantized.append((_F32.pack(dov), nvo))
    return quantized


def _self_payload(quantized: Sequence[_QEntry]) -> bytes:
    parts = []
    for bits, nvo in quantized:
        parts.append(bits)
        parts.append(_encode_varint(nvo))
    return b"".join(parts)


def _delta_payload(quantized: Sequence[_QEntry],
                   base: Sequence[_QEntry]) -> bytes:
    diffs = [i for i, entry in enumerate(quantized) if entry != base[i]]
    parts = [_encode_varint(len(diffs))]
    previous = -1
    for index in diffs:
        parts.append(_encode_varint(index - previous - 1))
        bits, nvo = quantized[index]
        parts.append(bits)
        parts.append(_encode_varint(nvo))
        previous = index
    return b"".join(parts)


class _StreamCursor:
    """Byte-granular reads over the packed stream, fetching pages lazily
    through the scheme's reader (each page fetched at most once per
    record decode)."""

    def __init__(self, codec: "PackedDeltaVPageCodec", pointer: int,
                 reader: PageReader) -> None:
        self._codec = codec
        self._reader = reader
        self._base = pointer
        self._buffer = bytearray()
        self.position = 0

    def take(self, count: int) -> bytes:
        while len(self._buffer) - self.position < count:
            next_byte = self._base + len(self._buffer)
            if next_byte >= self._codec.stream_length:
                raise PageCorruptError(
                    "packed V-page record truncated at stream end")
            page_size = self._codec.page_size
            page_index = next_byte // page_size
            page = self._reader.vpage_page(
                self._codec.first_page + page_index)
            self._buffer.extend(page[next_byte - page_index * page_size:])
        out = bytes(self._buffer[self.position:self.position + count])
        self.position += count
        return out

    def varint(self) -> int:
        value = 0
        shift = 0
        for _ in range(5):                 # u32 fits 5 LEB128 bytes
            byte = self.take(1)[0]
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                if value > 0xFFFFFFFF:
                    raise PageCorruptError("varint exceeds u32 range")
                return value
            shift += 7
        raise PageCorruptError("varint longer than 5 bytes")

    def consumed(self) -> bytes:
        return bytes(self._buffer[:self.position])


class PackedDeltaVPageCodec(VPageCodec):
    """Packed, delta-compressed V-page stream (record layout above).

    ``neighbors`` maps each cell id to its grid-adjacent cell ids (the
    4-neighbourhood from :meth:`CellGrid.neighbors`); it drives the
    reference-cell designation.  The writer buffers the stream in memory
    during build and flushes it page-by-page in ``finish`` — appends
    return final pointers immediately, and every page is written exactly
    once, deterministically.
    """

    kind = "packed-delta"
    packed = True

    def __init__(self, page_size: int, neighbors: Dict[int, List[int]],
                 scheme: str = "unknown") -> None:
        if page_size < 16:
            raise SchemeError(f"page size {page_size} too small to pack")
        self.page_size = page_size
        self.scheme = scheme
        #: cell id -> grid-adjacent cell ids; public so a layout rewrite
        #: can instantiate a fresh codec over the same grid.
        self.neighbors: Dict[int, List[int]] = dict(neighbors)
        self._stream = bytearray()
        #: First file page of the stream (set by ``finish``).
        self.first_page = 0
        self.stream_length = 0
        self._finished = False
        #: Write order of cells: cell id -> sequence number.
        self._write_seq: Dict[int, int] = {}
        self._current_cell: Optional[int] = None
        self._current_ref: Optional[int] = None
        #: Self-encoded records only: (cell, node offset) -> quantized
        #: entries / stream pointer.  Delta records never serve as bases,
        #: which caps reference chains at depth 1 by construction.
        self._base_entries: Dict[Tuple[int, int], List[_QEntry]] = {}
        self._base_pointers: Dict[Tuple[int, int], int] = {}
        self.self_records = 0
        self.delta_records = 0
        self.records = 0
        self.pages_used = 0

    # -- write -------------------------------------------------------------

    def begin_cell(self, cell_id: int) -> None:
        self._current_cell = cell_id
        self._current_ref = None
        best = -1
        for neighbor in self.neighbors.get(cell_id, []):
            seq = self._write_seq.get(neighbor, -1)
            if seq > best:
                best = seq
                self._current_ref = neighbor
        self._write_seq[cell_id] = len(self._write_seq)

    def append(self, vpage_file: PagedFile, cell_id: int, node_offset: int,
               ventries: Sequence[VEntry]) -> int:
        if self._finished:
            raise SchemeError("packed V-page stream already finished")
        if cell_id != self._current_cell:
            raise SchemeError(
                f"append for cell {cell_id} without begin_cell "
                f"(current: {self._current_cell})")
        quantized = _quantize(ventries)
        head = (bytes((PACKED_VERSION,)) + bytes((0,))
                + _encode_varint(node_offset)
                + _encode_varint(len(quantized)))
        self_body = head + _self_payload(quantized)
        body = self_body
        delta = False
        ref = self._current_ref
        if ref is not None:
            base = self._base_entries.get((ref, node_offset))
            if base is not None and len(base) == len(quantized):
                ref_pointer = self._base_pointers[(ref, node_offset)]
                delta_body = (bytes((PACKED_VERSION,))
                              + bytes((_FLAG_DELTA,))
                              + _encode_varint(node_offset)
                              + _encode_varint(len(quantized))
                              + _encode_varint(ref_pointer)
                              + _delta_payload(quantized, base))
                if len(delta_body) < len(self_body):
                    body = delta_body
                    delta = True
        pointer = len(self._stream)
        self._stream.extend(body)
        self._stream.extend(_CRC.pack(zlib.crc32(body)))
        self.records += 1
        registry = get_registry()
        if delta:
            self.delta_records += 1
            registry.counter(names.VPAGE_RECORDS_DELTA,
                             scheme=self.scheme).inc()
        else:
            self.self_records += 1
            self._base_entries[(cell_id, node_offset)] = quantized
            self._base_pointers[(cell_id, node_offset)] = pointer
            registry.counter(names.VPAGE_RECORDS_SELF,
                             scheme=self.scheme).inc()
        registry.counter(names.VPAGE_RAW_BYTES,
                         scheme=self.scheme).inc(self.page_size)
        registry.counter(names.VPAGE_ENCODED_BYTES,
                         scheme=self.scheme).inc(len(body) + _CRC.size)
        return pointer

    def finish(self, vpage_file: PagedFile) -> None:
        if self._finished:
            raise SchemeError("packed V-page stream already finished")
        self._finished = True
        self.stream_length = len(self._stream)
        pages = max((self.stream_length + self.page_size - 1)
                    // self.page_size, 1)
        # The stream owns the file from page 0: schemes give the packed
        # codec a dedicated V-page file.  A rewrite reuses the existing
        # pages and only grows the file if the new stream needs more.
        if vpage_file.num_pages < pages:
            vpage_file.allocate_many(pages - vpage_file.num_pages)
        self.first_page = 0
        for index in range(pages):
            chunk = bytes(self._stream[index * self.page_size:
                                       (index + 1) * self.page_size])
            pageio.write_page(vpage_file, self.first_page + index, chunk,
                              component="schemes")
        self.pages_used = pages

    # -- read --------------------------------------------------------------

    def read(self, pointer: int, reader: PageReader
             ) -> Tuple[int, List[VEntry]]:
        return self._read_record(pointer, reader, depth=0)

    def _read_record(self, pointer: int, reader: PageReader, *,
                     depth: int) -> Tuple[int, List[VEntry]]:
        if not 0 <= pointer < self.stream_length:
            raise PageCorruptError(
                f"packed V-page pointer {pointer} outside stream "
                f"of {self.stream_length} bytes")
        cursor = _StreamCursor(self, pointer, reader)
        try:
            version = cursor.take(1)[0]
            if version != PACKED_VERSION:
                raise PageCorruptError(
                    f"packed V-page version {version}, "
                    f"expected {PACKED_VERSION}")
            flags = cursor.take(1)[0]
            if flags & ~_FLAG_DELTA:
                raise PageCorruptError(
                    f"packed V-page has unknown flags 0x{flags:02x}")
            node_offset = cursor.varint()
            count = cursor.varint()
            if count > self.page_size:
                # More entries than a raw page could ever hold: garbage.
                raise PageCorruptError(
                    f"packed V-page entry count {count} implausible")
            if flags & _FLAG_DELTA:
                if depth > 0:
                    raise PageCorruptError(
                        "packed V-page reference chain deeper than 1")
                ref_pointer = cursor.varint()
                ndiff = cursor.varint()
                if ndiff > count:
                    raise PageCorruptError(
                        f"delta record with {ndiff} diffs over "
                        f"{count} entries")
                diffs: List[Tuple[int, VEntry]] = []
                index = -1
                for _ in range(ndiff):
                    index += cursor.varint() + 1
                    if index >= count:
                        raise PageCorruptError(
                            f"delta index {index} out of {count} entries")
                    dov = _F32.unpack(cursor.take(4))[0]
                    nvo = cursor.varint()
                    diffs.append((index, (dov, nvo)))
                self._check_crc(cursor)
                base_offset, entries = self._read_record(
                    ref_pointer, reader, depth=depth + 1)
                if base_offset != node_offset or len(entries) != count:
                    raise PageCorruptError(
                        "packed V-page reference record mismatch")
                for index, entry in diffs:
                    entries[index] = entry
            else:
                entries = []
                for _ in range(count):
                    dov = _F32.unpack(cursor.take(4))[0]
                    nvo = cursor.varint()
                    entries.append((dov, nvo))
                self._check_crc(cursor)
        except struct.error as exc:     # pragma: no cover - defensive
            raise PageCorruptError(
                f"packed V-page record unreadable: {exc}") from exc
        for dov, nvo in entries:
            if not 0.0 <= dov <= 1.0 or nvo < 0:
                raise PageCorruptError(
                    f"packed V-page decoded invalid V-entry "
                    f"({dov}, {nvo})")
        return node_offset, entries

    def _check_crc(self, cursor: _StreamCursor) -> None:
        body = cursor.consumed()
        stored = _CRC.unpack(cursor.take(_CRC.size))[0]
        if zlib.crc32(body) != stored:
            raise PageCorruptError("packed V-page record CRC mismatch")

    # -- reporting ----------------------------------------------------------

    def storage_vpage_bytes(self, page_size: int, total_vpages: int) -> int:
        pages = max((self.stream_length + page_size - 1) // page_size, 1)
        return page_size * pages

    def compression_stats(self) -> Dict[str, float]:
        raw = self.records * self.page_size
        encoded = self.stream_length
        return {
            "codec": self.kind,
            "records": self.records,
            "self_records": self.self_records,
            "delta_records": self.delta_records,
            "raw_bytes": raw,
            "encoded_bytes": encoded,
            "ratio": (encoded / raw) if raw else 1.0,
        }
