"""Per-file write-ahead journal: the redo log behind crash consistency.

A :class:`WriteAheadJournal` sits next to one disk-backed
:class:`~repro.storage.pagedfile.PagedFile` (``<data path>.wal``) and
records every page image *before* the data file is touched.  The data
file itself is only written at checkpoint time, after an fsync'd commit
marker proves the images durable — the classic no-steal/redo-only WAL
protocol, sized down to one file:

* ``write_page`` appends a page-image record (page id, the *intended*
  payload CRC, the payload bytes) to the journal and parks the image in
  the owning file's overlay;
* ``commit`` appends a commit marker covering every image since the
  previous marker and fsyncs once — group commit: one durable barrier
  amortized over a batch of writes;
* ``checkpoint`` copies the committed images into the data file, fsyncs
  it, and resets the journal to an empty header.

On-disk layout (all little-endian)::

    header:  8s magic "REPROWAL" | u32 version | u32 page_size
    record:  u32 magic "RWAL" | u32 payload len | u32 payload CRC32
             | payload
    payload: u8 kind=1 | u32 page_id | u32 page CRC | page bytes
             u8 kind=2 | u32 commit seqno | u32 records covered

The record magic int is chosen so its little-endian bytes read
``RWAL`` — recovery resynchronises on it to tell a torn tail (truncate)
from interior corruption (refuse; see
:class:`~repro.errors.JournalCorruptError`).

Durability is modelled explicitly so crashes are deterministic: the
journal file handle is unbuffered, and the class tracks the *written*
length next to the *durable* length (the fsync high-water mark).
:meth:`simulate_power_loss` keeps the durable prefix plus half of the
un-synced tail — deterministically producing exactly the torn shapes
recovery must absorb.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from typing import TYPE_CHECKING, BinaryIO, Optional

from repro.concurrency.witness import wrap_lock
from repro.errors import StorageError
from repro.obs import names
from repro.obs.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.faults import FaultInjector

#: Journal file header: magic, format version, owning file's page size.
HEADER = struct.Struct("<8sII")
HEADER_MAGIC = b"REPROWAL"
FORMAT_VERSION = 1

#: Record framing: magic, payload length, CRC32 of the payload.
RECORD = struct.Struct("<III")
#: Little-endian bytes of this int read ``b"RWAL"`` — the resync marker.
RECORD_MAGIC = 0x4C415752
RECORD_MAGIC_BYTES = struct.pack("<I", RECORD_MAGIC)

#: Page-image payload prefix: kind, page id, intended page CRC32.
PAGE_IMAGE = struct.Struct("<BII")
#: Commit-marker payload: kind, commit seqno, records covered.
COMMIT = struct.Struct("<BII")
KIND_PAGE_IMAGE = 1
KIND_COMMIT = 2


def journal_path(data_path: str) -> str:
    """The journal's path for a given data-file path."""
    return data_path + ".wal"


class WriteAheadJournal:
    """Append-only redo log for one :class:`PagedFile`.

    The journal never *reads* its own records — recovery
    (:mod:`repro.storage.recovery`) scans the file independently — so
    this class is a pure appender: records, commit markers, fsync,
    reset.  All methods serialize on one lock at lattice level
    ``journal``, acquired while the owner holds its ``pagedfile``-level
    I/O lock (strict descent; see :mod:`repro.concurrency.order`).
    """

    #: Lattice level of ``_lock`` (see repro.concurrency.order): below
    #: the pagedfile lock, above the metrics registry.  This level is in
    #: BLOCKING_ALLOWED — serializing WAL appends and the commit fsync
    #: is this lock's job.
    LOCK_LEVEL = "journal"

    def __init__(self, path: str, *, page_size: int, name: str) -> None:
        if page_size <= 0:
            raise StorageError(
                f"journal page_size must be positive, got {page_size}")
        self.path = path
        self.page_size = page_size
        #: Owning data file's name — metric label, so journal series sit
        #: next to the file's pagedfile_* series in reports.
        self.owner = name
        #: Fault-rule match name: plans target journals with ``.wal``.
        self.name = f"{name}.wal"
        registry = get_registry()
        self._m_records = registry.counter(names.JOURNAL_RECORDS, file=name)
        self._m_commits = registry.counter(names.JOURNAL_COMMITS, file=name)
        self._closed = False
        self._next_seqno = 1
        self._uncommitted = 0
        self._lock = wrap_lock(threading.RLock(),
                               level=WriteAheadJournal.LOCK_LEVEL,
                               name=f"journal:{name}")
        # Unbuffered on purpose: the written/durable split below is the
        # whole crash model, and a Python-level buffer would add a third
        # nondeterministic state between them.
        existed = os.path.exists(path)
        mode = "r+b" if existed else "w+b"
        self._fh: Optional[BinaryIO] = open(path, mode, buffering=0)
        if existed:
            self._written = self._validate_header()
        else:
            self._fh.write(HEADER.pack(HEADER_MAGIC, FORMAT_VERSION,
                                       page_size))
            os.fsync(self._fh.fileno())
            self._written = HEADER.size
        # Everything on disk at open time is treated as durable: a
        # simulated power loss has already truncated the un-synced tail.
        self._durable = self._written

    def _validate_header(self) -> int:
        """Check the existing header; returns the current file length."""
        assert self._fh is not None
        self._fh.seek(0, os.SEEK_END)
        size = self._fh.tell()
        if size < HEADER.size:
            raise StorageError(
                f"{self.path}: journal shorter than its header "
                f"({size} bytes)")
        self._fh.seek(0)
        magic, version, page_size = HEADER.unpack(
            self._fh.read(HEADER.size))
        if magic != HEADER_MAGIC:
            raise StorageError(f"{self.path}: not a journal file")
        if version != FORMAT_VERSION:
            raise StorageError(
                f"{self.path}: unsupported journal format version "
                f"{version} (expected {FORMAT_VERSION})")
        if page_size != self.page_size:
            raise StorageError(
                f"{self.path}: journal page size {page_size} does not "
                f"match file page size {self.page_size}")
        return size

    # -- state -------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def written_length(self) -> int:
        """Bytes written so far (header included), durable or not."""
        with self._lock:
            return self._written

    @property
    def durable_length(self) -> int:
        """Bytes guaranteed to survive :meth:`simulate_power_loss`."""
        with self._lock:
            return self._durable

    @property
    def has_entries(self) -> bool:
        """Whether any record bytes follow the header."""
        with self._lock:
            return self._written > HEADER.size

    @property
    def uncommitted_records(self) -> int:
        """Page images appended since the last commit marker."""
        with self._lock:
            return self._uncommitted

    def _check_open(self) -> None:
        if self._closed or self._fh is None:
            raise StorageError(f"{self.name}: journal is closed")

    # -- appending ---------------------------------------------------------

    def _append(self, payload: bytes, frame_crc: int) -> None:
        """Write one framed record at the end of the journal."""
        assert self._fh is not None
        record = RECORD.pack(RECORD_MAGIC, len(payload), frame_crc) + payload
        self._fh.seek(0, os.SEEK_END)
        self._fh.write(record)
        self._written += len(record)
        self._m_records.inc()

    def append_page_image(self, page_id: int, data: bytes, page_crc: int,
                          faults: Optional["FaultInjector"] = None) -> None:
        """Append one page-image record (WAL-before-data).

        ``page_crc`` is the CRC of the payload the caller *intended* to
        write; ``data`` may already be torn by a fault filter.  Keeping
        the intended CRC means a replayed torn write is detected on the
        next read of the data page, exactly like an un-journaled torn
        write.  The framing CRC covers the bytes actually stored, so a
        faithfully recorded torn page is *not* journal corruption — only
        ``faults.filter_journal`` (applied after framing) models bytes
        rotting inside the WAL itself.
        """
        if len(data) != self.page_size:
            raise StorageError(
                f"{self.name}: page image must be exactly "
                f"{self.page_size} bytes, got {len(data)}")
        with self._lock:
            self._check_open()
            payload = PAGE_IMAGE.pack(KIND_PAGE_IMAGE, page_id,
                                      page_crc) + data
            frame_crc = zlib.crc32(payload)
            if faults is not None:
                payload = faults.filter_journal(self.name, payload)
            self._append(payload, frame_crc)
            self._uncommitted += 1

    def append_commit_marker(self) -> int:
        """Append a commit marker covering every image since the last.

        Returns the marker's sequence number.  The marker is *not*
        durable until :meth:`sync` — callers split the two so a crash
        point can land between them.
        """
        with self._lock:
            self._check_open()
            seqno = self._next_seqno
            payload = COMMIT.pack(KIND_COMMIT, seqno, self._uncommitted)
            self._append(payload, zlib.crc32(payload))
            self._next_seqno += 1
            self._uncommitted = 0
            self._m_commits.inc()
            return seqno

    def sync(self) -> None:
        """fsync the journal; everything written becomes durable."""
        with self._lock:
            self._check_open()
            assert self._fh is not None
            os.fsync(self._fh.fileno())
            self._durable = self._written

    def reset(self) -> None:
        """Truncate back to an empty header (checkpoint completed)."""
        with self._lock:
            self._check_open()
            assert self._fh is not None
            self._fh.truncate(HEADER.size)
            os.fsync(self._fh.fileno())
            self._written = HEADER.size
            self._durable = HEADER.size
            self._uncommitted = 0

    # -- lifecycle ---------------------------------------------------------

    def simulate_power_loss(self) -> None:
        """Drop the volatile half of the un-synced tail and close.

        Keeps ``durable + (written - durable) // 2`` bytes: the fsync'd
        prefix always survives, un-synced records may survive whole, in
        part (a torn tail), or not at all — the three shapes a real
        power loss produces, made deterministic.
        """
        with self._lock:
            if self._closed or self._fh is None:
                return
            keep = self._durable + (self._written - self._durable) // 2
            self._fh.truncate(keep)
            self._fh.close()
            self._fh = None
            self._closed = True

    def close(self) -> None:
        """Close the handle; safe to call twice.  No implicit sync —
        the owner checkpoints (which resets) before closing."""
        with self._lock:
            if self._closed:
                return
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            self._closed = True

    def __repr__(self) -> str:
        return (f"WriteAheadJournal({self.name!r}, "
                f"written={self._written}, durable={self._durable}, "
                f"uncommitted={self._uncommitted})")


__all__ = ["WriteAheadJournal", "journal_path", "HEADER", "HEADER_MAGIC",
           "FORMAT_VERSION", "RECORD", "RECORD_MAGIC", "RECORD_MAGIC_BYTES",
           "PAGE_IMAGE", "COMMIT", "KIND_PAGE_IMAGE", "KIND_COMMIT"]
