"""LoD layer: runtime LoD selection (paper eqs. 5-6) and internal-LoD
generation (bottom-up aggregation and simplification)."""

from repro.lod.selection import (internal_lod_fraction, leaf_lod_fraction,
                                 select_internal_lod, select_leaf_lod)
from repro.lod.internal import InternalLOD, build_internal_lods

__all__ = ["internal_lod_fraction", "leaf_lod_fraction",
           "select_internal_lod", "select_leaf_lod",
           "InternalLOD", "build_internal_lods"]
