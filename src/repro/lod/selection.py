"""Runtime LoD selection — the paper's equations 5 and 6.

Both equations blend the highest and lowest LoDs of a chain linearly:

* internal nodes terminated at by the threshold test use the fraction
  ``DoV / eta`` (eq. 5) — a node whose DoV is right at the threshold gets
  the finest internal LoD, a nearly-hidden node gets the coarsest;
* leaf objects use ``k = min(DoV / MAXDOV, 1)`` (eq. 6) with
  ``MAXDOV = 0.5`` — an object subtending half the sphere (the maximum
  possible from outside its bounding box) gets full detail.

The blend's polygon load is the same linear combination of the two
levels' polygon counts; :meth:`repro.simplify.lod_chain.LODChain
.interpolated_polygons` applies it.
"""

from __future__ import annotations

from repro.constants import MAXDOV
from repro.errors import HDoVError
from repro.simplify.lod_chain import LODChain


def internal_lod_fraction(dov: float, eta: float) -> float:
    """Blend fraction of eq. 5 for an internal LoD.

    Defined for ``0 < DoV <= eta`` (the traversal only terminates at an
    internal LoD under that condition); the result is in (0, 1].
    """
    if eta <= 0.0:
        raise HDoVError(f"eta must be positive for internal LoDs, got {eta}")
    if not 0.0 < dov <= eta:
        raise HDoVError(
            f"internal LoD selection requires 0 < DoV <= eta, got "
            f"DoV={dov}, eta={eta}")
    return dov / eta


def leaf_lod_fraction(dov: float) -> float:
    """Blend fraction ``k`` of eq. 6 for a leaf object."""
    if dov < 0.0:
        raise HDoVError(f"negative DoV: {dov}")
    return min(dov / MAXDOV, 1.0)


def select_internal_lod(chain: LODChain, dov: float, eta: float) -> int:
    """Polygon count of the internal LoD selected by eq. 5."""
    return chain.interpolated_polygons(internal_lod_fraction(dov, eta))


def select_leaf_lod(chain: LODChain, dov: float) -> int:
    """Polygon count of the object LoD selected by eq. 6."""
    return chain.interpolated_polygons(leaf_lod_fraction(dov))
