"""Internal-LoD generation.

Paper, Section 5.1: "To generate internal LoDs, descendants of each
internal node are found.  For leaf nodes, the internal LoDs are generated
by aggregating the object models and running a polygon simplification
software ... Internal LoDs of nodes at higher levels are then generated
in a bottom-up order."

An internal LoD is itself a small chain (the paper's eq. 5 interpolates
between a node's highest and lowest internal LoD), built by simplifying
the aggregation of the node's children's representations to ``s`` times
their summed polygon count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.constants import DEFAULT_LOD_RATIO
from repro.errors import HDoVError
from repro.geometry.mesh import TriangleMesh
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.scene.objects import Scene
from repro.simplify.clustering import simplify_clustering
from repro.simplify.lod_chain import LODChain


@dataclass
class InternalLOD:
    """The internal LoD chain of one tree node plus bookkeeping."""

    node_offset: int
    chain: LODChain
    #: Summed finest polygon counts of the node's children — the
    #: denominator of the paper's ratio ``s``.
    child_polygons: int

    @property
    def ratio_s(self) -> float:
        """Achieved ``s = npoly(node) / sum(npoly(children))``."""
        if self.child_polygons == 0:
            return 0.0
        return self.chain.finest.num_faces / self.child_polygons

    @property
    def byte_size(self) -> int:
        return sum(self.chain.byte_sizes())


def build_internal_lods(tree: RTree, scene: Scene, *,
                        ratio_s: float = DEFAULT_LOD_RATIO,
                        levels: int = 2,
                        simplify: Callable[[TriangleMesh, int], TriangleMesh]
                        = simplify_clustering) -> Dict[int, InternalLOD]:
    """Build internal LoD chains for every node of ``tree``, bottom-up.

    Requires ``node.node_offset`` to be assigned (run after
    :meth:`repro.rtree.persist.NodeStore.write_tree` or assign offsets
    manually).  Returns a mapping node offset -> :class:`InternalLOD`.

    ``levels`` >= 2 gives each node a highest and lowest internal LoD for
    eq. 5 to interpolate between; the lowest is one further ``ratio_s``
    reduction of the highest.
    """
    if not 0.0 < ratio_s < 1.0:
        raise HDoVError(f"ratio_s must be in (0, 1), got {ratio_s}")
    if levels < 1:
        raise HDoVError(f"levels must be >= 1, got {levels}")

    result: Dict[int, InternalLOD] = {}
    # Bottom-up: process nodes by increasing level.
    nodes = sorted(tree.iter_nodes_dfs(), key=lambda n: n.level)
    for node in nodes:
        if node.node_offset is None:
            raise HDoVError("node offsets unassigned; persist the tree first")
        agg_mesh, child_polys = _aggregate(node, scene, result)
        target = max(int(child_polys * ratio_s), 4)
        highest = simplify(agg_mesh, target)
        chain_levels: List[TriangleMesh] = [highest]
        current = highest
        for _ in range(levels - 1):
            coarser_target = max(int(current.num_faces * ratio_s), 4)
            if coarser_target >= current.num_faces:
                chain_levels.append(current)
                continue
            current = simplify(current, coarser_target)
            chain_levels.append(current)
        result[node.node_offset] = InternalLOD(
            node_offset=node.node_offset,
            chain=LODChain(chain_levels),
            child_polygons=child_polys,
        )
    return result


def _aggregate(node: Node, scene: Scene,
               built: Dict[int, InternalLOD]):
    """The aggregation a node's internal LoD is simplified from.

    Leaf nodes aggregate their objects' finest meshes; internal nodes
    aggregate their children's already-built *highest internal LoDs*
    (bottom-up order guarantees availability), which keeps higher-level
    aggregations small.
    """
    if node.is_leaf:
        meshes = [scene.get(e.object_id).lods.finest  # type: ignore[arg-type]
                  for e in node.entries]
        child_polys = sum(m.num_faces for m in meshes)
    else:
        meshes = []
        child_polys = 0
        for child in node.children():
            child_lod = built.get(child.node_offset)
            if child_lod is None:
                raise HDoVError(
                    f"child offset {child.node_offset} not built yet "
                    f"(bottom-up order violated)")
            meshes.append(child_lod.chain.finest)
            child_polys += child_lod.chain.finest.num_faces
    if not meshes:
        raise HDoVError("cannot aggregate an empty node")
    return TriangleMesh.merge(meshes), child_polys
