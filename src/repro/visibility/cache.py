"""Resumable precompute cell cache.

The offline DoV pipeline is the slowest path in the system (the paper:
"the precomputation takes about 1.02 seconds for each cell"), so an
interrupted run should not start over.  The cache is a directory with

* ``manifest.json`` — a magic marker, format version, the grid's cell
  count, and a *content fingerprint* hashing everything the result
  depends on: the scene's packed MBRs, the object ids, the grid
  geometry, and the estimator configuration (resolution, samples per
  cell, DoV floor).  Any of those changing changes the fingerprint, so
  a stale cache can never be silently resumed into wrong tables.
* ``cells.jsonl`` — one JSON line per completed cell, appended and
  flushed as results arrive.  JSON floats round-trip ``float64``
  exactly (``repr`` emits the shortest uniquely-parsing form), so a
  resumed run is bit-identical to an uninterrupted one.

Durability: the manifest is written atomically (temp file + fsync +
rename; see :mod:`repro.storage.atomic`), and appended cells obey a
*fsync policy*: ``"always"`` (the default) fsyncs after every record,
so a cell acknowledged to the progress callback survives a power loss;
``"close"`` defers the fsync to :meth:`PrecomputeCache.close`;
``"never"`` restores the pre-crash-consistency behaviour (flush only)
for benchmarks that do not care.  A crash between flush and fsync can
still leave at most one torn final line; that line is dropped on load
(its cell is simply recomputed) and counted in
:attr:`PrecomputeCache.torn_lines` — the ``repro crash`` harness sweeps
truncation points over the file to prove exactly this.  Every other way
the directory can be wrong — unreadable manifest, wrong magic/version,
fingerprint mismatch under ``resume=True``, corrupt interior line,
out-of-range cell or DoV — raises a
:class:`~repro.errors.VisibilityError` naming the offending path,
matching :mod:`repro.visibility.persist`.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import IO, Dict, Optional, Tuple

import numpy as np

from repro.errors import VisibilityError
from repro.storage.atomic import atomic_write_text
from repro.visibility.cells import CellGrid

#: Valid ``fsync_policy`` values for :meth:`PrecomputeCache.open`.
FSYNC_POLICIES = ("always", "close", "never")

#: Identifies a manifest as ours before any other field is trusted.
MAGIC = "repro-precompute-cache"

#: Cache format version, checked on load.
FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_CELLS = "cells.jsonl"


def precompute_fingerprint(boxes: np.ndarray, object_ids: np.ndarray,
                           grid: CellGrid, resolution: int,
                           samples_per_cell: int, min_dov: float) -> str:
    """Content hash of everything a visibility table depends on."""
    digest = hashlib.sha256()
    digest.update(MAGIC.encode())
    digest.update(np.ascontiguousarray(boxes, dtype=np.float64).tobytes())
    digest.update(np.ascontiguousarray(object_ids,
                                       dtype=np.int64).tobytes())
    grid_spec = (float(grid.origin[0]), float(grid.origin[1]),
                 float(grid.cell_size), grid.cells_x, grid.cells_y,
                 float(grid.eye_height))
    digest.update(repr(grid_spec).encode())
    digest.update(repr((int(resolution), int(samples_per_cell),
                        float(min_dov))).encode())
    return digest.hexdigest()


class PrecomputeCache:
    """Append-only store of per-cell DoV results keyed by a fingerprint.

    Use :meth:`open` rather than the constructor; it validates or
    initialises the on-disk state.
    """

    def __init__(self, path: str, fingerprint: str, num_cells: int,
                 fsync_policy: str = "always") -> None:
        if fsync_policy not in FSYNC_POLICIES:
            raise VisibilityError(
                f"unknown fsync policy {fsync_policy!r}; choose from "
                f"{list(FSYNC_POLICIES)}")
        self.path = path
        self.fingerprint = fingerprint
        self.num_cells = num_cells
        self.fsync_policy = fsync_policy
        #: Cells recovered from a previous run, ``{cell_id: {oid: dov}}``.
        self.loaded: Dict[int, Dict[int, float]] = {}
        #: Torn trailing lines dropped during load (0 or 1 per open).
        self.torn_lines = 0
        self._cells_file: Optional[IO[str]] = None

    # -- opening -----------------------------------------------------------

    @classmethod
    def open(cls, path: str, fingerprint: str, num_cells: int,
             resume: bool = True,
             fsync_policy: str = "always") -> "PrecomputeCache":
        """Open (and validate) or initialise the cache directory.

        With ``resume=True`` an existing cache must match ``fingerprint``
        — a mismatch means the scene/grid/estimator changed and raises
        ``VisibilityError`` instead of silently mixing results.  With
        ``resume=False`` any existing contents are discarded.
        ``fsync_policy`` controls when appended cells become durable
        (see the module docstring).
        """
        cache = cls(path, fingerprint, num_cells,
                    fsync_policy=fsync_policy)
        manifest_path = os.path.join(path, _MANIFEST)
        cells_path = os.path.join(path, _CELLS)
        os.makedirs(path, exist_ok=True)
        if resume and os.path.exists(manifest_path):
            cache._validate_manifest(manifest_path)
            cache._load_cells(cells_path)
        else:
            cache._write_manifest(manifest_path)
            with open(cells_path, "w"):
                pass                        # truncate any stale results
        cache._cells_file = open(cells_path, "a")
        return cache

    def _write_manifest(self, manifest_path: str) -> None:
        manifest = {"magic": MAGIC, "version": FORMAT_VERSION,
                    "fingerprint": self.fingerprint,
                    "num_cells": self.num_cells}
        # Atomic + durable: a crash mid-initialisation must leave either
        # no manifest (the cache is re-initialised) or a complete one —
        # a torn manifest would poison every later resume.
        atomic_write_text(manifest_path,
                          json.dumps(manifest, sort_keys=True) + "\n")

    def _validate_manifest(self, manifest_path: str) -> None:
        try:
            with open(manifest_path) as fh:
                manifest = json.load(fh)
        except (OSError, ValueError) as exc:
            raise VisibilityError(
                f"{manifest_path}: corrupt or unreadable precompute-cache "
                f"manifest ({exc})") from exc
        if not isinstance(manifest, dict) or \
                manifest.get("magic") != MAGIC:
            raise VisibilityError(
                f"{manifest_path}: not a precompute-cache manifest")
        if manifest.get("version") != FORMAT_VERSION:
            raise VisibilityError(
                f"{manifest_path}: unsupported cache format version "
                f"{manifest.get('version')!r} (expected {FORMAT_VERSION})")
        if manifest.get("fingerprint") != self.fingerprint:
            raise VisibilityError(
                f"{manifest_path}: stale precompute cache — the scene, "
                f"grid or estimator configuration changed since it was "
                f"written; delete the cache directory or rerun without "
                f"resume")
        if manifest.get("num_cells") != self.num_cells:
            raise VisibilityError(
                f"{manifest_path}: cache covers "
                f"{manifest.get('num_cells')!r} cells, grid has "
                f"{self.num_cells}")

    def _load_cells(self, cells_path: str) -> None:
        if not os.path.exists(cells_path):
            return
        try:
            with open(cells_path) as fh:
                lines = fh.readlines()
        except OSError as exc:
            raise VisibilityError(
                f"{cells_path}: unreadable precompute cache "
                f"({exc})") from exc
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except ValueError as exc:
                if index == len(lines) - 1 and not line.endswith("\n"):
                    # A process killed mid-append leaves exactly one
                    # unterminated tail; the cell is recomputed.
                    self.torn_lines += 1
                    return
                raise VisibilityError(
                    f"{cells_path}: corrupt precompute cache at line "
                    f"{index + 1} ({exc})") from exc
            self._ingest(cells_path, index, entry)

    def _ingest(self, cells_path: str, index: int, entry: object) -> None:
        if not isinstance(entry, dict) or "cell" not in entry \
                or "dov" not in entry or not isinstance(entry["dov"], dict):
            raise VisibilityError(
                f"{cells_path}: corrupt precompute cache at line "
                f"{index + 1} (not a cell record)")
        cell_id = entry["cell"]
        if not isinstance(cell_id, int) or \
                not 0 <= cell_id < self.num_cells:
            raise VisibilityError(
                f"{cells_path}: cell id {cell_id!r} out of range at line "
                f"{index + 1}")
        dov: Dict[int, float] = {}
        for key, value in entry["dov"].items():
            try:
                oid = int(key)
            except ValueError as exc:
                raise VisibilityError(
                    f"{cells_path}: bad object id {key!r} at line "
                    f"{index + 1}") from exc
            if not isinstance(value, (int, float)) or \
                    not 0.0 < float(value) <= 1.0:
                raise VisibilityError(
                    f"{cells_path}: DoV {value!r} out of (0, 1] at line "
                    f"{index + 1}")
            dov[oid] = float(value)
        # Later lines win: a rerun that recomputed a cell appends a
        # fresh record rather than rewriting the file.
        self.loaded[cell_id] = dov

    # -- writing -----------------------------------------------------------

    def record(self, cell_id: int, dov: Dict[int, float]) -> None:
        """Append one completed cell; durability per the fsync policy.

        ``flush()`` alone only hands the line to the OS — the old
        behaviour lost acknowledged cells on power loss.  Under the
        default ``"always"`` policy the record is fsync'd before this
        returns, so an acknowledged cell is a durable cell.
        """
        if self._cells_file is None:
            raise VisibilityError("precompute cache is closed")
        line = json.dumps({"cell": cell_id,
                           "dov": {str(oid): value
                                   for oid, value in sorted(dov.items())}},
                          sort_keys=True)
        self._cells_file.write(line + "\n")
        self._cells_file.flush()
        if self.fsync_policy == "always":
            os.fsync(self._cells_file.fileno())

    def close(self) -> None:
        if self._cells_file is not None:
            if self.fsync_policy != "never":
                self._cells_file.flush()
                os.fsync(self._cells_file.fileno())
            self._cells_file.close()
            self._cells_file = None

    def __enter__(self) -> "PrecomputeCache":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"PrecomputeCache(path={self.path!r}, "
                f"loaded={len(self.loaded)}/{self.num_cells})")
