"""Visibility substrate: viewing cells, DoV computation, precomputation.

Replaces the paper's hardware-accelerated DoV algorithm [Shou, PhD 2002]
with a software spherical ray caster, and implements the per-cell
preprocessing pipeline that instantiates the HDoV-tree's view-variant
data.
"""

from repro.visibility.cache import PrecomputeCache, precompute_fingerprint
from repro.visibility.cells import CellGrid
from repro.visibility.dov import CellVisibility, VisibilityTable
from repro.visibility.raycast import RayCastDoVEstimator
from repro.visibility.precompute import precompute_visibility
from repro.visibility.persist import (load_visibility, save_visibility,
                                      visibility_digest)

__all__ = ["CellGrid", "CellVisibility", "VisibilityTable",
           "RayCastDoVEstimator", "precompute_visibility",
           "PrecomputeCache", "precompute_fingerprint",
           "load_visibility", "save_visibility", "visibility_digest"]
