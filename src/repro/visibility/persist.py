"""Persisting visibility tables.

DoV precomputation is the expensive step of the pipeline ("the
precomputation takes about 1.02 seconds for each cell" in the paper's
setup, and proportionally here), so the table is worth saving.  The
format is a single ``.npz`` with three parallel arrays (cell id, object
id, DoV) plus metadata — compact, portable, and loadable without
rerunning a single ray.

Robustness: the file starts with a magic marker plus a format version,
and :func:`load_visibility` funnels every way an on-disk file can be
wrong — truncated archive, not an archive at all, missing keys, ragged
arrays, wrong version — into one :class:`~repro.errors.VisibilityError`
that names the offending path, instead of leaking ``zipfile``/``numpy``
internals to the caller.
"""

from __future__ import annotations

import hashlib
import io
import zipfile
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import VisibilityError
from repro.storage.atomic import atomic_write_bytes
from repro.visibility.dov import CellVisibility, VisibilityTable

#: Identifies a file as ours before any other field is trusted.
MAGIC = "repro-visibility"

#: Format version written into the file, checked on load.  Version 2
#: added the magic marker (version-1 files predate this library's first
#: release, so there is no compatibility path to keep).
FORMAT_VERSION = 2

_REQUIRED_KEYS = ("magic", "version", "num_cells", "cell_ids",
                  "object_ids", "dovs")


def _table_arrays(table: VisibilityTable
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The canonical (cell id, object id, DoV) triple-array layout:
    cells ascending, object ids ascending within each cell."""
    cell_ids: List[int] = []
    object_ids: List[int] = []
    dovs: List[float] = []
    for cell in table.cells():
        for oid, dov in sorted(cell.dov.items()):
            cell_ids.append(cell.cell_id)
            object_ids.append(oid)
            dovs.append(dov)
    return (np.asarray(cell_ids, dtype=np.int64),
            np.asarray(object_ids, dtype=np.int64),
            np.asarray(dovs, dtype=np.float64))


def save_visibility(table: VisibilityTable, path: str) -> None:
    """Write ``table`` to ``path`` (``.npz``), atomically.

    The archive is assembled in memory and lands via temp file + fsync
    + rename (:func:`~repro.storage.atomic.atomic_write_bytes`): hours
    of precompute must never be replaced by a half-written zip.  Keeps
    ``np.savez``'s convention of appending ``.npz`` to extension-less
    paths, so the on-disk name is unchanged from the in-place writer.
    """
    cell_ids, object_ids, dovs = _table_arrays(table)
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        magic=np.asarray(MAGIC),
        version=np.int64(FORMAT_VERSION),
        num_cells=np.int64(table.num_cells),
        cell_ids=cell_ids,
        object_ids=object_ids,
        dovs=dovs,
    )
    if not path.endswith(".npz"):
        path = path + ".npz"
    atomic_write_bytes(path, buffer.getvalue())


def visibility_digest(table: VisibilityTable) -> str:
    """SHA-256 over the exact bytes :func:`save_visibility` would store.

    The precompute pipeline's determinism contract — batched, parallel
    and resumed runs produce *bit-identical* tables — is asserted by
    comparing digests, which sidesteps the non-reproducible zip metadata
    (timestamps) inside the ``.npz`` container itself.
    """
    cell_ids, object_ids, dovs = _table_arrays(table)
    digest = hashlib.sha256()
    digest.update(np.int64(table.num_cells).tobytes())
    digest.update(cell_ids.tobytes())
    digest.update(object_ids.tobytes())
    digest.update(dovs.tobytes())
    return digest.hexdigest()


def _read_arrays(path: str) -> Tuple[int, "np.ndarray", "np.ndarray",
                                     "np.ndarray"]:
    """Open, validate and extract the archive; errors all name ``path``."""
    try:
        with np.load(path) as data:
            missing = [k for k in _REQUIRED_KEYS if k not in data.files]
            if missing:
                raise VisibilityError(
                    f"{path}: not a visibility file "
                    f"(missing {', '.join(missing)})")
            magic = str(data["magic"])
            if magic != MAGIC:
                raise VisibilityError(
                    f"{path}: bad magic {magic!r}; "
                    f"not a visibility file")
            version = int(data["version"])
            if version != FORMAT_VERSION:
                raise VisibilityError(
                    f"{path}: unsupported visibility format "
                    f"version {version} (expected {FORMAT_VERSION})")
            return (int(data["num_cells"]), data["cell_ids"],
                    data["object_ids"], data["dovs"])
    except VisibilityError:
        raise
    except (OSError, ValueError, EOFError, KeyError,
            zipfile.BadZipFile) as exc:
        # numpy raises different exceptions for a truncated archive, a
        # non-archive, and a pickle-rejected entry; normalise them all.
        raise VisibilityError(
            f"{path}: corrupt or unreadable visibility file "
            f"({exc})") from exc


def load_visibility(path: str) -> VisibilityTable:
    """Read a table written by :func:`save_visibility`.

    Raises :class:`VisibilityError` naming ``path`` for anything that is
    not a complete, well-formed visibility file of the current version.
    """
    num_cells, cell_ids, object_ids, dovs = _read_arrays(path)
    if not (len(cell_ids) == len(object_ids) == len(dovs)):
        raise VisibilityError(
            f"{path}: corrupt visibility file (ragged arrays)")
    table = VisibilityTable(num_cells)
    current: Optional[CellVisibility] = None
    for cid, oid, dov in zip(cell_ids, object_ids, dovs):
        cid = int(cid)
        if current is None or current.cell_id != cid:
            if current is not None:
                table.put(current)
            current = CellVisibility(cid)
        current.set(int(oid), float(dov))
    if current is not None:
        table.put(current)
    return table
