"""Persisting visibility tables.

DoV precomputation is the expensive step of the pipeline ("the
precomputation takes about 1.02 seconds for each cell" in the paper's
setup, and proportionally here), so the table is worth saving.  The
format is a single ``.npz`` with three parallel arrays (cell id, object
id, DoV) plus metadata — compact, portable, and loadable without
rerunning a single ray.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import VisibilityError
from repro.visibility.dov import CellVisibility, VisibilityTable

#: Format version written into the file, checked on load.
FORMAT_VERSION = 1


def save_visibility(table: VisibilityTable, path: str) -> None:
    """Write ``table`` to ``path`` (``.npz``)."""
    cell_ids = []
    object_ids = []
    dovs = []
    for cell in table.cells():
        for oid, dov in sorted(cell.dov.items()):
            cell_ids.append(cell.cell_id)
            object_ids.append(oid)
            dovs.append(dov)
    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        num_cells=np.int64(table.num_cells),
        cell_ids=np.asarray(cell_ids, dtype=np.int64),
        object_ids=np.asarray(object_ids, dtype=np.int64),
        dovs=np.asarray(dovs, dtype=np.float64),
    )


def load_visibility(path: str) -> VisibilityTable:
    """Read a table written by :func:`save_visibility`."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != FORMAT_VERSION:
            raise VisibilityError(
                f"unsupported visibility format version {version}")
        num_cells = int(data["num_cells"])
        cell_ids = data["cell_ids"]
        object_ids = data["object_ids"]
        dovs = data["dovs"]
    if not (len(cell_ids) == len(object_ids) == len(dovs)):
        raise VisibilityError("corrupt visibility file: ragged arrays")
    table = VisibilityTable(num_cells)
    current: Optional[CellVisibility] = None
    for cid, oid, dov in zip(cell_ids, object_ids, dovs):
        cid = int(cid)
        if current is None or current.cell_id != cid:
            if current is not None:
                table.put(current)
            current = CellVisibility(cid)
        current.set(int(oid), float(dov))
    if current is not None:
        table.put(current)
    return table
