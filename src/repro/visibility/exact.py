"""Mesh-accurate DoV estimation (validation path).

The production estimator (:mod:`repro.visibility.raycast`) intersects
rays with object *AABBs* — the item-buffer substitution documented in
DESIGN.md.  This module provides the slow, mesh-accurate reference: the
same cube-map ray grid intersected with every object's actual triangles
(Möller–Trumbore).  It exists to *validate* the substitution — tests
compare the two on scenes where the difference is predictable (boxes:
identical; round objects: the box estimate is conservative).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import VisibilityError
from repro.geometry.mesh import TriangleMesh
from repro.geometry.rays import (NO_HIT, cube_map_solid_angles,
                                 rays_vs_triangles, sphere_direction_grid)
from repro.geometry.solidangle import FULL_SPHERE
from repro.geometry.vec import PointLike


class MeshDoVEstimator:
    """Exact (triangle-level) DoV estimation over full meshes.

    O(rays x total triangles) — use for validation and small scenes
    only; the AABB estimator is the production path.
    """

    def __init__(self, meshes: Sequence[TriangleMesh],
                 object_ids: Optional[Sequence[int]] = None,
                 resolution: int = 16) -> None:
        if not meshes:
            raise VisibilityError("need at least one mesh")
        if object_ids is None:
            object_ids = list(range(len(meshes)))
        if len(object_ids) != len(meshes):
            raise VisibilityError("object_ids length mismatch")
        self.object_ids = list(object_ids)
        self.resolution = resolution
        self.directions = sphere_direction_grid(resolution)
        self.solid_angles = cube_map_solid_angles(resolution)
        # Pack all triangles with an owner row per triangle.
        packed: List[np.ndarray] = []
        owners: List[int] = []
        for row, mesh in enumerate(meshes):
            if mesh.num_faces == 0:
                continue
            packed.append(mesh.vertices[mesh.faces])
            owners.extend([row] * mesh.num_faces)
        if not packed:
            raise VisibilityError("all meshes are empty")
        self.triangles = np.concatenate(packed, axis=0)
        self.owners = np.asarray(owners, dtype=np.int64)

    def dov_from_viewpoint(self, viewpoint: PointLike, chunk: int = 512
                           ) -> Dict[int, float]:
        """Per-object DoV with exact triangle occlusion."""
        viewpoint = np.asarray(viewpoint, dtype=np.float64)
        num_rays = len(self.directions)
        owner_rows = np.full(num_rays, -1, dtype=np.int64)
        for start in range(0, num_rays, chunk):
            stop = min(start + chunk, num_rays)
            t = rays_vs_triangles(viewpoint, self.directions[start:stop],
                                  self.triangles)
            best = np.argmin(t, axis=1)
            best_t = t[np.arange(stop - start), best]
            hit = best_t < NO_HIT
            owner_rows[start:stop] = np.where(hit, self.owners[best], -1)
        result: Dict[int, float] = {}
        hit_mask = owner_rows >= 0
        if not hit_mask.any():
            return result
        sums = np.bincount(owner_rows[hit_mask],
                           weights=self.solid_angles[hit_mask],
                           minlength=len(self.object_ids))
        for row in np.nonzero(sums)[0]:
            result[self.object_ids[row]] = float(
                min(sums[row] / FULL_SPHERE, 1.0))
        return result
