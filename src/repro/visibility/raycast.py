"""Ray-cast DoV estimator.

The software equivalent of the paper's hardware-accelerated DoV
computation: an item-buffer rendering over the whole sphere of directions.
For a viewpoint, we cast one ray per cube-map texel against every object
AABB; the nearest hit "owns" the texel, and an object's DoV is the sum of
its texels' solid angles divided by ``4 * pi``.  Occlusion is therefore
handled exactly as in an item buffer: an object hidden behind a nearer
box receives no texels and gets DoV 0.

Using AABBs rather than triangle meshes as occluders is the conservative
choice for the *occludee* (an object's box is at least as big as the
object) and slightly aggressive for the *occluder*; for the paper's city
scenes — buildings are boxes — it is near-exact, and the estimator is
validated against analytic solid angles in the tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import VisibilityError
from repro.geometry.rays import cube_map_solid_angles, sphere_direction_grid
from repro.geometry.solidangle import FULL_SPHERE
from repro.geometry.vec import PointLike


class RayCastDoVEstimator:
    """Estimates per-object DoV values from viewpoints.

    Parameters
    ----------
    boxes:
        Packed object AABBs, shape ``(n, 6)``, in object-id order — entry
        ``i`` must be the box of the object whose id is ``object_ids[i]``.
    object_ids:
        Object id of each box row.  Defaults to ``0..n-1``.
    resolution:
        Cube-map face resolution; rays = ``6 * resolution**2``.  16 gives
        ~1500 rays (DoV quantum ~6.5e-4, adequate for eta >= 1e-3); 32
        gives ~6100 rays (quantum ~1.6e-4) and is the default used by the
        experiments, which sweep eta down to 5e-5 — values below the
        quantum read as "at most one texel", which is exactly the
        barely-visible regime the threshold is meant to prune.
    """

    def __init__(self, boxes: np.ndarray,
                 object_ids: Optional[Sequence[int]] = None,
                 resolution: int = 32) -> None:
        boxes = np.asarray(boxes, dtype=np.float64)
        if boxes.ndim != 2 or boxes.shape[1] != 6:
            raise VisibilityError(f"boxes must be (n, 6), got {boxes.shape}")
        self.boxes = boxes
        if object_ids is None:
            object_ids = list(range(len(boxes)))
        if len(object_ids) != len(boxes):
            raise VisibilityError("object_ids length mismatch")
        self.object_ids = np.asarray(object_ids, dtype=np.int64)
        self.resolution = resolution
        self.directions = sphere_direction_grid(resolution)
        self.solid_angles = cube_map_solid_angles(resolution)
        #: Smallest non-zero DoV the estimator can report.
        self.dov_quantum = float(self.solid_angles.min() / FULL_SPHERE)
        # Hot-path layout: rays grouped by direction-sign octant so the
        # slab kernel can pick each box's near/far bound per axis once
        # instead of per (ray, box) element; float32 halves memory traffic.
        self._lo32 = self.boxes[:, 0:3].astype(np.float32)
        self._hi32 = self.boxes[:, 3:6].astype(np.float32)
        self._octants = self._group_by_octant(self.directions)

    @staticmethod
    def _group_by_octant(directions: np.ndarray
                         ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Partition rays into (index array, direction array) per sign
        octant.  Cube-map directions never have a zero component."""
        signs = directions > 0.0
        codes = signs[:, 0] * 4 + signs[:, 1] * 2 + signs[:, 2]
        groups = []
        for code in range(8):
            idx = np.nonzero(codes == code)[0]
            if len(idx):
                groups.append((idx, directions[idx].astype(np.float32)))
        return groups

    @property
    def num_rays(self) -> int:
        return len(self.directions)

    def _nearest_ids(self, viewpoint: np.ndarray) -> np.ndarray:
        """Per-ray nearest box row (-1 for a miss), octant-grouped kernel."""
        origin = viewpoint.astype(np.float32)
        out = np.full(self.num_rays, -1, dtype=np.int64)
        for idx, dirs in self._octants:
            positive = dirs[0] > 0.0                       # octant signs
            near = np.where(positive, self._lo32, self._hi32)   # (b, 3)
            far = np.where(positive, self._hi32, self._lo32)
            inv = np.float32(1.0) / dirs                   # (r, 3)
            tmin = np.multiply.outer(inv[:, 0], near[:, 0] - origin[0])
            tmax = np.multiply.outer(inv[:, 0], far[:, 0] - origin[0])
            for axis in (1, 2):
                t1 = np.multiply.outer(inv[:, axis],
                                       near[:, axis] - origin[axis])
                t2 = np.multiply.outer(inv[:, axis],
                                       far[:, axis] - origin[axis])
                np.maximum(tmin, t1, out=tmin)
                np.minimum(tmax, t2, out=tmax)
            # Entry distance; rays starting inside a box hit at t = 0.
            np.maximum(tmin, np.float32(0.0), out=tmin)
            hit = tmax >= tmin
            tmin[~hit] = np.inf
            best = np.argmin(tmin, axis=1)
            best_t = tmin[np.arange(len(dirs)), best]
            out[idx] = np.where(np.isfinite(best_t), best, -1)
        return out

    def dov_from_viewpoint(self, viewpoint: PointLike) -> Dict[int, float]:
        """Point DoV (eq. 1's visible part, projected): object id -> DoV.

        Objects with no owned texel are absent (DoV 0).
        """
        viewpoint = np.asarray(viewpoint, dtype=np.float64)
        ids = self._nearest_ids(viewpoint)
        result: Dict[int, float] = {}
        hit_mask = ids >= 0
        if not hit_mask.any():
            return result
        hit_rows = ids[hit_mask]
        omegas = self.solid_angles[hit_mask]
        sums = np.bincount(hit_rows, weights=omegas, minlength=len(self.boxes))
        for row in np.nonzero(sums)[0]:
            oid = int(self.object_ids[row])
            result[oid] = float(min(sums[row] / FULL_SPHERE, 1.0))
        return result

    def dov_from_region(self,
                        viewpoints: Sequence[PointLike]) -> Dict[int, float]:
        """Conservative region DoV (eq. 2): per-object max over samples."""
        if not len(viewpoints):
            raise VisibilityError("need at least one sample viewpoint")
        merged: Dict[int, float] = {}
        for viewpoint in viewpoints:
            point_dov = self.dov_from_viewpoint(viewpoint)
            for oid, value in point_dov.items():
                if value > merged.get(oid, 0.0):
                    merged[oid] = value
        return merged
