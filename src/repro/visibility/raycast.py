"""Ray-cast DoV estimator.

The software equivalent of the paper's hardware-accelerated DoV
computation: an item-buffer rendering over the whole sphere of directions.
For a viewpoint, we cast one ray per cube-map texel against every object
AABB; the nearest hit "owns" the texel, and an object's DoV is the sum of
its texels' solid angles divided by ``4 * pi``.  Occlusion is therefore
handled exactly as in an item buffer: an object hidden behind a nearer
box receives no texels and gets DoV 0.

Using AABBs rather than triangle meshes as occluders is the conservative
choice for the *occludee* (an object's box is at least as big as the
object) and slightly aggressive for the *occluder*; for the paper's city
scenes — buildings are boxes — it is near-exact, and the estimator is
validated against analytic solid angles in the tests.

Batching: the precompute pipeline casts the same ray set from many
viewpoints, so the estimator's hot path is :meth:`dov_sums`, which
intersects a whole ``(v, 3)`` viewpoint block in one call to the shared
slab kernel (:mod:`repro.geometry.slab`) and reduces texel ownership to
per-object solid-angle sums with a single offset ``bincount``.  The
batched path is bit-identical to the one-viewpoint-at-a-time path — the
kernel performs the same per-element operations regardless of batch
shape, and the bincount accumulates each viewpoint's texels in the same
ray order the scalar path uses.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import VisibilityError
from repro.geometry.rays import cube_map_solid_angles, sphere_direction_grid
from repro.geometry.slab import group_rays_by_octant, slab_nearest
from repro.geometry.solidangle import FULL_SPHERE
from repro.geometry.vec import PointLike


class RayCastDoVEstimator:
    """Estimates per-object DoV values from viewpoints.

    Parameters
    ----------
    boxes:
        Packed object AABBs, shape ``(n, 6)``, in object-id order — entry
        ``i`` must be the box of the object whose id is ``object_ids[i]``.
    object_ids:
        Object id of each box row.  Defaults to ``0..n-1``.
    resolution:
        Cube-map face resolution; rays = ``6 * resolution**2``.  16 gives
        ~1500 rays (DoV quantum ~6.5e-4, adequate for eta >= 1e-3); 32
        gives ~6100 rays (quantum ~1.6e-4) and is the default used by the
        experiments, which sweep eta down to 5e-5 — values below the
        quantum read as "at most one texel", which is exactly the
        barely-visible regime the threshold is meant to prune.
    """

    def __init__(self, boxes: np.ndarray,
                 object_ids: Optional[Sequence[int]] = None,
                 resolution: int = 32) -> None:
        boxes = np.asarray(boxes, dtype=np.float64)
        if boxes.ndim != 2 or boxes.shape[1] != 6:
            raise VisibilityError(f"boxes must be (n, 6), got {boxes.shape}")
        self.boxes = boxes
        if object_ids is None:
            object_ids = list(range(len(boxes)))
        if len(object_ids) != len(boxes):
            raise VisibilityError("object_ids length mismatch")
        self.object_ids = np.asarray(object_ids, dtype=np.int64)
        self.resolution = resolution
        self.directions = sphere_direction_grid(resolution)
        self.solid_angles = cube_map_solid_angles(resolution)
        #: Smallest non-zero DoV the estimator can report.
        self.dov_quantum = float(self.solid_angles.min() / FULL_SPHERE)
        # Hot-path layout: rays grouped by direction-sign octant so the
        # slab kernel can pick each box's near/far bound per axis once
        # instead of per (ray, box) element; float32 halves memory traffic.
        self._lo32 = self.boxes[:, 0:3].astype(np.float32)
        self._hi32 = self.boxes[:, 3:6].astype(np.float32)
        self._dirs32 = self.directions.astype(np.float32)
        self._groups = group_rays_by_octant(self._dirs32)
        # The vectorized region reduction keys sums by box row; with
        # duplicate object ids the dict-based merge has subtly different
        # (last-row-wins) semantics, so such estimators take the
        # pointwise path.  Scenes never produce duplicates.
        self._unique_ids = len(np.unique(self.object_ids)) == len(
            self.object_ids)

    @property
    def num_rays(self) -> int:
        return len(self.directions)

    def _nearest_ids_batch(self, viewpoints: np.ndarray) -> np.ndarray:
        """Per-ray nearest box row (-1 for a miss) for a ``(v, 3)``
        viewpoint block, via the shared octant-grouped slab kernel."""
        origins = np.asarray(viewpoints, dtype=np.float64)
        ids, _ts = slab_nearest(origins.astype(np.float32), self._dirs32,
                                self._lo32, self._hi32,
                                groups=self._groups)
        return ids

    def _nearest_ids(self, viewpoint: np.ndarray) -> np.ndarray:
        """Single-viewpoint view of :meth:`_nearest_ids_batch`."""
        return self._nearest_ids_batch(
            np.asarray(viewpoint, dtype=np.float64)[None, :])[0]

    def dov_sums(self, viewpoints: np.ndarray) -> np.ndarray:
        """Per-viewpoint, per-box-row solid-angle sums, shape ``(v, n)``.

        Row ``i`` holds, for each box row, the summed solid angle of the
        texels that box owns from ``viewpoints[i]`` — eq. 1's visible
        part before normalisation by ``4 * pi``.  One offset ``bincount``
        accumulates every viewpoint at once, in the same per-viewpoint
        ray order as :meth:`dov_from_viewpoint`, so the sums are
        bit-identical to the scalar path.
        """
        viewpoints = np.atleast_2d(np.asarray(viewpoints, dtype=np.float64))
        num_vps = len(viewpoints)
        num_boxes = len(self.boxes)
        ids = self._nearest_ids_batch(viewpoints)          # (v, r)
        hit_mask = ids >= 0
        if not hit_mask.any() or num_boxes == 0:
            return np.zeros((num_vps, num_boxes))
        # Offset each viewpoint's box rows into its own bincount segment.
        offsets = np.arange(num_vps, dtype=np.int64)[:, None] * num_boxes
        flat_ids = (ids + offsets)[hit_mask]
        omegas = np.broadcast_to(self.solid_angles,
                                 ids.shape)[hit_mask]
        sums = np.bincount(flat_ids, weights=omegas,
                           minlength=num_vps * num_boxes)
        return sums.reshape(num_vps, num_boxes)

    def dov_from_viewpoint(self, viewpoint: PointLike) -> Dict[int, float]:
        """Point DoV (eq. 1's visible part, projected): object id -> DoV.

        Objects with no owned texel are absent (DoV 0).
        """
        viewpoint = np.asarray(viewpoint, dtype=np.float64)
        ids = self._nearest_ids(viewpoint)
        result: Dict[int, float] = {}
        hit_mask = ids >= 0
        if not hit_mask.any():
            return result
        hit_rows = ids[hit_mask]
        omegas = self.solid_angles[hit_mask]
        sums = np.bincount(hit_rows, weights=omegas, minlength=len(self.boxes))
        for row in np.nonzero(sums)[0]:
            oid = int(self.object_ids[row])
            result[oid] = float(min(sums[row] / FULL_SPHERE, 1.0))
        return result

    def dov_from_region(self,
                        viewpoints: Sequence[PointLike]) -> Dict[int, float]:
        """Conservative region DoV (eq. 2): per-object max over samples.

        Computed for the whole sample block with one batched kernel call;
        bit-identical to merging :meth:`dov_from_viewpoint` results.
        """
        if not len(viewpoints):
            raise VisibilityError("need at least one sample viewpoint")
        if not self._unique_ids:
            return self._dov_from_region_pointwise(viewpoints)
        sums = self.dov_sums(np.asarray(viewpoints, dtype=np.float64))
        return self.region_dov_from_sums(sums)

    def region_dov_from_sums(self, sums: np.ndarray) -> Dict[int, float]:
        """Reduce a ``(v, n)`` :meth:`dov_sums` block to the region DoV.

        The per-object max over samples (eq. 2), normalised and clamped.
        Exposed so the precompute pipeline can slice one batched
        ``dov_sums`` result into per-cell sample blocks.
        """
        region = np.max(np.atleast_2d(sums), axis=0)       # (n,)
        result: Dict[int, float] = {}
        for row in np.nonzero(region)[0]:
            oid = int(self.object_ids[row])
            result[oid] = float(min(region[row] / FULL_SPHERE, 1.0))
        return result

    def _dov_from_region_pointwise(
            self, viewpoints: Sequence[PointLike]) -> Dict[int, float]:
        """The pre-batching merge, kept for duplicate-id estimators."""
        merged: Dict[int, float] = {}
        for viewpoint in viewpoints:
            point_dov = self.dov_from_viewpoint(viewpoint)
            for oid, value in point_dov.items():
                if value > merged.get(oid, 0.0):
                    merged[oid] = value
        return merged
