"""Viewpoint-space cell grid.

The paper partitions the user viewpoint space into disjoint cells and
precomputes visibility per cell (Sections 1, 3).  We use a uniform 2-D
grid at eye height over the city footprint: walkthrough viewpoints move
on the ground plane, which matches the paper's walkthrough sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import VisibilityError
from repro.geometry.aabb import AABB
from repro.geometry.vec import PointLike


@dataclass(frozen=True)
class CellGrid:
    """Uniform grid of viewing cells over a rectangular ground area.

    Cells are indexed ``cell_id = ix * cells_y + iy`` with ``ix`` along x.
    Viewpoints are at fixed ``eye_height`` above the ground.
    """

    origin: Tuple[float, float]
    cell_size: float
    cells_x: int
    cells_y: int
    eye_height: float = 1.7

    def __post_init__(self) -> None:
        if self.cell_size <= 0:
            raise VisibilityError(f"cell_size must be positive, got {self.cell_size}")
        if self.cells_x < 1 or self.cells_y < 1:
            raise VisibilityError("grid needs at least one cell")

    @classmethod
    def covering(cls, bounds: AABB, cell_size: float,
                 eye_height: float = 1.7) -> "CellGrid":
        """Grid covering the xy-footprint of ``bounds``."""
        extent = bounds.extent
        cells_x = max(int(np.ceil(extent[0] / cell_size)), 1)
        cells_y = max(int(np.ceil(extent[1] / cell_size)), 1)
        return cls(origin=(float(bounds.lo[0]), float(bounds.lo[1])),
                   cell_size=cell_size, cells_x=cells_x, cells_y=cells_y,
                   eye_height=eye_height)

    @property
    def num_cells(self) -> int:
        return self.cells_x * self.cells_y

    def cell_ids(self) -> Iterator[int]:
        return iter(range(self.num_cells))

    def cell_of_point(self, point: PointLike) -> int:
        """Cell id containing ``point`` (clamped to the grid edge)."""
        p = np.asarray(point, dtype=np.float64)
        ix = int((p[0] - self.origin[0]) / self.cell_size)
        iy = int((p[1] - self.origin[1]) / self.cell_size)
        ix = min(max(ix, 0), self.cells_x - 1)
        iy = min(max(iy, 0), self.cells_y - 1)
        return ix * self.cells_y + iy

    def cell_indices(self, cell_id: int) -> Tuple[int, int]:
        if not 0 <= cell_id < self.num_cells:
            raise VisibilityError(f"cell id {cell_id} out of range")
        return divmod(cell_id, self.cells_y)

    def cell_center(self, cell_id: int) -> np.ndarray:
        """Viewpoint at the cell's center, at eye height."""
        ix, iy = self.cell_indices(cell_id)
        return np.array([
            self.origin[0] + (ix + 0.5) * self.cell_size,
            self.origin[1] + (iy + 0.5) * self.cell_size,
            self.eye_height,
        ])

    def cell_box(self, cell_id: int) -> AABB:
        """The cell's footprint as a thin AABB at eye height."""
        ix, iy = self.cell_indices(cell_id)
        lo = np.array([self.origin[0] + ix * self.cell_size,
                       self.origin[1] + iy * self.cell_size,
                       self.eye_height])
        hi = lo + np.array([self.cell_size, self.cell_size, 0.0])
        return AABB(lo, hi)

    def sample_viewpoints(self, cell_id: int, samples: int = 1,
                          seed: int = 0) -> List[np.ndarray]:
        """Viewpoints for the conservative region DoV (eq. 2): the cell
        center plus ``samples - 1`` deterministic jittered points."""
        if samples < 1:
            raise VisibilityError(f"samples must be >= 1, got {samples}")
        points = [self.cell_center(cell_id)]
        if samples > 1:
            rng = np.random.default_rng(seed * 1_000_003 + cell_id)
            box = self.cell_box(cell_id)
            for _ in range(samples - 1):
                xy = rng.uniform(box.lo[:2], box.hi[:2])
                points.append(np.array([xy[0], xy[1], self.eye_height]))
        return points

    def neighbors(self, cell_id: int) -> List[int]:
        """4-neighborhood (used by prefetch heuristics)."""
        ix, iy = self.cell_indices(cell_id)
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = ix + dx, iy + dy
            if 0 <= nx < self.cells_x and 0 <= ny < self.cells_y:
                out.append(nx * self.cells_y + ny)
        return out
