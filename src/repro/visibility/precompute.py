"""Per-cell visibility precomputation pipeline.

The paper's offline step: "A conservative visibility algorithm is also
applied on pre-determined cells to find visible objects in each cell.  A
hardware-accelerated DoV algorithm is then applied on the visible set..."
Here both steps are the ray-cast estimator; the conservative part is the
per-cell max over sample viewpoints (eq. 2).

This is the slowest path in the system, so it is engineered in three
layers, any of which can be used alone:

* **Batching** — cells are processed ``batch_cells`` at a time: all of a
  batch's sample viewpoints go through one call to the estimator's
  vectorized :meth:`~repro.visibility.raycast.RayCastDoVEstimator.dov_sums`,
  replacing the per-viewpoint Python loop and dict merge of the seed
  implementation with one slab-kernel invocation plus an offset
  ``bincount`` and a per-cell ``max`` reduction.
* **Process parallelism** — ``workers=N`` shards cell batches across a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Each worker builds
  its estimator once from an initializer (no large arrays pickled per
  task), and results are keyed by cell id, so the table is independent
  of scheduling order.
* **Resumable cache** — ``cache_dir`` records every finished cell in a
  fingerprinted :class:`~repro.visibility.cache.PrecomputeCache`;
  ``resume=True`` skips cells already on disk, and a fingerprint
  mismatch (scene/grid/estimator changed) refuses to resume.

Determinism contract: for a given scene, grid and estimator
configuration, the resulting :class:`~repro.visibility.dov.VisibilityTable`
is **bit-identical** across every combination of ``batch_cells``,
``workers`` and resume/fresh runs, and identical to the seed serial
per-viewpoint path.  The slab kernel performs the same per-element
float32 operations regardless of batch shape, and all reductions run in
a fixed (ray-major, then viewpoint) order; parity is enforced by tests
and by the CI determinism gate.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import VisibilityError
from repro.obs import names
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.scene.objects import Scene
from repro.visibility.cache import PrecomputeCache, precompute_fingerprint
from repro.visibility.cells import CellGrid
from repro.visibility.dov import CellVisibility, VisibilityTable
from repro.visibility.raycast import RayCastDoVEstimator

#: One result row: (cell id, post-threshold DoV mapping).
CellResult = Tuple[int, Dict[int, float]]

#: Optional progress hook: ``callback(cells_done, cells_total)``.
ProgressFn = Callable[[int, int], None]

#: Default number of cells whose samples share one kernel invocation.
#: 16 cells x a few samples keeps the (viewpoints, rays/8, boxes)
#: intermediates well inside cache-friendly territory while amortising
#: the per-call dispatch overhead that dominates small scenes.
DEFAULT_BATCH_CELLS = 16

# Worker-process state, created once per worker by _worker_init so the
# estimator's packed boxes and ray grid are never pickled per task.
_worker_estimator: Optional[RayCastDoVEstimator] = None


def _worker_init(boxes: np.ndarray, object_ids: np.ndarray,
                 resolution: int) -> None:
    global _worker_estimator
    _worker_estimator = RayCastDoVEstimator(boxes, object_ids=list(object_ids),
                                            resolution=resolution)


def _worker_compute(grid: CellGrid, cell_ids: Sequence[int],
                    samples_per_cell: int,
                    min_dov: float) -> List[CellResult]:
    if _worker_estimator is None:     # pragma: no cover - executor misuse
        raise VisibilityError("worker estimator was not initialised")
    return compute_cell_batch(_worker_estimator, grid, cell_ids,
                              samples_per_cell, min_dov)


def compute_cell_batch(estimator: RayCastDoVEstimator, grid: CellGrid,
                       cell_ids: Sequence[int], samples_per_cell: int,
                       min_dov: float) -> List[CellResult]:
    """DoV tables for a batch of cells via one vectorized kernel call.

    All of the batch's sample viewpoints are cast together; the
    ``(viewpoints, boxes)`` solid-angle sums are then sliced back into
    per-cell blocks and reduced with eq. 2's max.  Bit-identical to
    calling :meth:`dov_from_region` per cell.
    """
    viewpoints: List[np.ndarray] = []
    for cell_id in cell_ids:
        viewpoints.extend(grid.sample_viewpoints(cell_id,
                                                 samples=samples_per_cell))
    sums = estimator.dov_sums(np.asarray(viewpoints, dtype=np.float64))
    results: List[CellResult] = []
    for index, cell_id in enumerate(cell_ids):
        block = sums[index * samples_per_cell:(index + 1) * samples_per_cell]
        region = estimator.region_dov_from_sums(block)
        kept = {oid: value for oid, value in region.items()
                if value > min_dov}
        results.append((cell_id, kept))
    return results


def _batches(cell_ids: Sequence[int],
             batch_cells: int) -> List[List[int]]:
    return [list(cell_ids[start:start + batch_cells])
            for start in range(0, len(cell_ids), batch_cells)]


def _compute_serial(estimator: RayCastDoVEstimator, grid: CellGrid,
                    pending: Sequence[int], samples_per_cell: int,
                    min_dov: float, batch_cells: int,
                    on_batch: Callable[[List[CellResult]], None]) -> None:
    for batch in _batches(pending, batch_cells):
        with span("precompute_batch", cells=len(batch)):
            on_batch(compute_cell_batch(estimator, grid, batch,
                                        samples_per_cell, min_dov))


def _compute_parallel(estimator: RayCastDoVEstimator, grid: CellGrid,
                      pending: Sequence[int], samples_per_cell: int,
                      min_dov: float, batch_cells: int, workers: int,
                      on_batch: Callable[[List[CellResult]], None]) -> None:
    with ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_init,
            initargs=(estimator.boxes, estimator.object_ids,
                      estimator.resolution)) as executor:
        futures: List[Future[List[CellResult]]] = [
            executor.submit(_worker_compute, grid, batch,
                            samples_per_cell, min_dov)
            for batch in _batches(pending, batch_cells)]
        # Collect in submission order: results land in the table keyed
        # by cell id anyway, but ordered collection also keeps the
        # cache's append order (and any progress output) reproducible.
        for future in futures:
            with span("precompute_batch_collect"):
                on_batch(future.result())


def precompute_visibility(scene: Scene, grid: CellGrid, *,
                          resolution: int = 32,
                          samples_per_cell: int = 1,
                          estimator: Optional[RayCastDoVEstimator] = None,
                          min_dov: float = 0.0,
                          workers: Optional[int] = None,
                          batch_cells: int = DEFAULT_BATCH_CELLS,
                          cache_dir: Optional[str] = None,
                          resume: bool = False,
                          progress: Optional[ProgressFn] = None
                          ) -> VisibilityTable:
    """Compute the per-cell DoV table for ``scene`` over ``grid``.

    Parameters
    ----------
    resolution:
        Cube-map resolution of the estimator (ignored when ``estimator``
        is passed in).
    samples_per_cell:
        Viewpoint samples per cell; 1 uses the cell center only.  More
        samples make the region DoV more conservative (eq. 2 is a max
        over all cell points) at linear precomputation cost.
    min_dov:
        Optional floor below which an object is treated as hidden.  The
        paper keeps every DoV > 0; experiments leave this at 0.
    workers:
        Process count for data-parallel sharding; ``None`` or 1 runs in
        this process.  Any worker count yields a bit-identical table.
    batch_cells:
        Cells whose sample viewpoints share one vectorized kernel call
        (and, under ``workers``, the unit of work sent to the pool).
    cache_dir:
        Directory for the resumable cell cache; every finished cell is
        flushed there as it completes.
    resume:
        Reuse cells already present in ``cache_dir`` from an earlier run
        with the *same* scene/grid/estimator configuration (enforced by
        content fingerprint); a mismatch raises ``VisibilityError``.
    progress:
        Optional ``callback(cells_done, cells_total)`` invoked after the
        cached cells are counted and after every finished batch.
    """
    if len(scene) == 0:
        raise VisibilityError("cannot precompute visibility of empty scene")
    if min_dov < 0.0:
        raise VisibilityError(f"min_dov must be >= 0, got {min_dov}")
    if samples_per_cell < 1:
        raise VisibilityError(
            f"samples_per_cell must be >= 1, got {samples_per_cell}")
    if batch_cells < 1:
        raise VisibilityError(
            f"batch_cells must be >= 1, got {batch_cells}")
    if workers is not None and workers < 1:
        raise VisibilityError(f"workers must be >= 1, got {workers}")
    if resume and cache_dir is None:
        raise VisibilityError("resume=True requires cache_dir")
    if estimator is None:
        estimator = RayCastDoVEstimator(scene.packed_mbrs(),
                                        object_ids=scene.object_ids(),
                                        resolution=resolution)
    elif workers is not None and workers > 1:
        # Workers rebuild their estimator from (boxes, ids, resolution);
        # an arbitrary caller-supplied instance cannot be reproduced in
        # a child process without pickling it wholesale.
        if type(estimator) is not RayCastDoVEstimator:
            raise VisibilityError(
                "workers > 1 requires the built-in RayCastDoVEstimator "
                "(custom estimators cannot be rebuilt in worker "
                "processes)")

    registry = get_registry()
    m_cells = registry.counter(names.PRECOMPUTE_CELLS)
    m_cached = registry.counter(names.PRECOMPUTE_CELLS_CACHED)
    m_rays = registry.counter(names.PRECOMPUTE_RAYS)

    cache: Optional[PrecomputeCache] = None
    if cache_dir is not None:
        fingerprint = precompute_fingerprint(
            estimator.boxes, estimator.object_ids, grid,
            estimator.resolution, samples_per_cell, min_dov)
        cache = PrecomputeCache.open(cache_dir, fingerprint,
                                     grid.num_cells, resume=resume)

    table = VisibilityTable(grid.num_cells)
    total = grid.num_cells
    done = 0
    try:
        pending: List[int] = []
        for cell_id in grid.cell_ids():
            if cache is not None and cell_id in cache.loaded:
                table.put(CellVisibility(cell_id,
                                         dov=dict(cache.loaded[cell_id])))
                m_cached.inc()
                m_cells.inc()
                done += 1
            else:
                pending.append(cell_id)
        if progress is not None:
            progress(done, total)

        def on_batch(results: List[CellResult]) -> None:
            nonlocal done
            for cell_id, dov in results:
                table.put(CellVisibility(cell_id, dov=dov))
                if cache is not None:
                    cache.record(cell_id, dov)
            m_cells.inc(len(results))
            m_rays.inc(len(results) * samples_per_cell *
                       estimator.num_rays)
            done += len(results)
            if progress is not None:
                progress(done, total)

        with span("precompute", cells=total, pending=len(pending),
                  workers=workers or 1, batch_cells=batch_cells):
            if workers is not None and workers > 1 and pending:
                _compute_parallel(estimator, grid, pending,
                                  samples_per_cell, min_dov, batch_cells,
                                  workers, on_batch)
            else:
                _compute_serial(estimator, grid, pending,
                                samples_per_cell, min_dov, batch_cells,
                                on_batch)
    finally:
        if cache is not None:
            cache.close()
    return table
