"""Per-cell visibility precomputation pipeline.

The paper's offline step: "A conservative visibility algorithm is also
applied on pre-determined cells to find visible objects in each cell.  A
hardware-accelerated DoV algorithm is then applied on the visible set..."
Here both steps are the ray-cast estimator; the conservative part is the
per-cell max over sample viewpoints (eq. 2).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import VisibilityError
from repro.scene.objects import Scene
from repro.visibility.cells import CellGrid
from repro.visibility.dov import CellVisibility, VisibilityTable
from repro.visibility.raycast import RayCastDoVEstimator


def precompute_visibility(scene: Scene, grid: CellGrid, *,
                          resolution: int = 32,
                          samples_per_cell: int = 1,
                          estimator: Optional[RayCastDoVEstimator] = None,
                          min_dov: float = 0.0) -> VisibilityTable:
    """Compute the per-cell DoV table for ``scene`` over ``grid``.

    Parameters
    ----------
    resolution:
        Cube-map resolution of the estimator (ignored when ``estimator``
        is passed in).
    samples_per_cell:
        Viewpoint samples per cell; 1 uses the cell center only.  More
        samples make the region DoV more conservative (eq. 2 is a max
        over all cell points) at linear precomputation cost.
    min_dov:
        Optional floor below which an object is treated as hidden.  The
        paper keeps every DoV > 0; experiments leave this at 0.
    """
    if len(scene) == 0:
        raise VisibilityError("cannot precompute visibility of empty scene")
    if min_dov < 0.0:
        raise VisibilityError(f"min_dov must be >= 0, got {min_dov}")
    if estimator is None:
        estimator = RayCastDoVEstimator(scene.packed_mbrs(),
                                        object_ids=scene.object_ids(),
                                        resolution=resolution)
    table = VisibilityTable(grid.num_cells)
    for cell_id in grid.cell_ids():
        viewpoints = grid.sample_viewpoints(cell_id, samples=samples_per_cell)
        dov = estimator.dov_from_region(viewpoints)
        cell = CellVisibility(cell_id)
        for oid, value in dov.items():
            if value > min_dov:
                cell.set(oid, value)
        table.put(cell)
    return table
