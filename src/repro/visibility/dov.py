"""Degree-of-visibility data model.

DoV of a point set X from viewpoint p is the solid angle of the visible
(un-occluded) part of X divided by the full sphere (paper, Section 3.1);
for a viewing cell it is the conservative maximum over the cell's points
(eq. 2).  This module holds the per-cell results of the estimator and the
aggregation helpers used when instantiating HDoV-tree nodes:

* DoV of a group = DoV computed as if the aggregation were one point set
  (occlusion *within* the group does not count against it); the paper's
  attribute 2 says an internal entry's DoV equals the sum of the DoVs in
  the node it points to, which is exact for disjoint projections — the
  tree builder therefore *sums child DoVs upward*.
* NVO (number of visible objects) of a group = count of descendant
  objects with DoV > 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Tuple

from repro.errors import VisibilityError


@dataclass
class CellVisibility:
    """Visibility data of one viewing cell: object id -> DoV in (0, 1].

    Objects absent from the mapping have DoV 0 (hidden) and must not be
    retrieved (paper: "An object with DoV value of 0 is unimportant ...
    and therefore should not be accessed").
    """

    cell_id: int
    dov: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for oid, value in self.dov.items():
            self._check(oid, value)

    @staticmethod
    def _check(object_id: int, value: float) -> None:
        if not 0.0 < value <= 1.0:
            raise VisibilityError(
                f"stored DoV must be in (0, 1], got {value} for object "
                f"{object_id}")

    def set(self, object_id: int, value: float) -> None:
        """Record a DoV; zero values are dropped (hidden objects are
        simply absent)."""
        if value == 0.0:
            self.dov.pop(object_id, None)
            return
        self._check(object_id, value)
        self.dov[object_id] = value

    def get(self, object_id: int) -> float:
        return self.dov.get(object_id, 0.0)

    def visible_ids(self) -> List[int]:
        return sorted(self.dov)

    @property
    def num_visible(self) -> int:
        return len(self.dov)

    def total_dov(self) -> float:
        return sum(self.dov.values())

    def merge_max(self, other: Mapping[int, float]) -> None:
        """Combine with another viewpoint sample by per-object maximum
        (the conservative region DoV of eq. 2)."""
        for oid, value in other.items():
            if value > self.get(oid):
                self.set(oid, value)

    def __repr__(self) -> str:
        return (f"CellVisibility(cell={self.cell_id}, "
                f"visible={self.num_visible})")


class VisibilityTable:
    """All cells' visibility data, the product of precomputation.

    This is the in-memory form; the storage schemes of
    :mod:`repro.core.schemes` lay it out on disk.
    """

    def __init__(self, num_cells: int) -> None:
        if num_cells < 1:
            raise VisibilityError(f"num_cells must be >= 1, got {num_cells}")
        self.num_cells = num_cells
        self._cells: Dict[int, CellVisibility] = {}

    def put(self, cell: CellVisibility) -> None:
        if not 0 <= cell.cell_id < self.num_cells:
            raise VisibilityError(f"cell id {cell.cell_id} out of range")
        self._cells[cell.cell_id] = cell

    def cell(self, cell_id: int) -> CellVisibility:
        if not 0 <= cell_id < self.num_cells:
            raise VisibilityError(f"cell id {cell_id} out of range")
        return self._cells.get(cell_id) or CellVisibility(cell_id)

    def cells(self) -> Iterator[CellVisibility]:
        for cid in range(self.num_cells):
            yield self.cell(cid)

    def average_visible(self) -> float:
        """Mean N_vobj across cells (used in the storage-cost formulas)."""
        return sum(c.num_visible for c in self.cells()) / self.num_cells

    def __repr__(self) -> str:
        return (f"VisibilityTable(cells={self.num_cells}, "
                f"avg_visible={self.average_visible():.1f})")


def aggregate_upward(child_dovs: List[float]) -> float:
    """DoV of a parent entry from its child node's entry DoVs.

    Paper attribute 2: "The DoV value of an entry E in an internal node
    equals the summation of all the DoV values in the node that E points
    to."  Clamped to 1.0 (the projections cannot exceed the sphere).
    """
    total = sum(child_dovs)
    if total < 0.0:
        raise VisibilityError(f"negative DoV sum: {total}")
    return min(total, 1.0)
