"""Software cube-map item-buffer rasterizer.

The paper computes DoV with "a hardware-accelerated DoV algorithm":
render the scene into an item buffer (each pixel stores the id of the
nearest object) over all viewing directions and count each object's
pixels.  This module is that algorithm in software: six 90-degree
perspective views (one per cube face) rasterized with a z-buffer.

It is the third DoV estimator in the library and the most faithful to
the paper's method:

* :class:`~repro.visibility.raycast.RayCastDoVEstimator` — fast AABB
  ray casting (production path; identical results for box scenes);
* :class:`~repro.visibility.exact.MeshDoVEstimator` — triangle ray
  casting (exact reference, slow);
* :class:`CubeMapRasterizer` — triangle *rasterization*, the literal
  item-buffer: same semantics as the exact estimator, different
  sampling machinery (pixel centers vs ray directions coincide on the
  cube-map grid, so the two agree up to depth-precision ties).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import VisibilityError
from repro.geometry.mesh import TriangleMesh
from repro.geometry.rays import cube_map_solid_angles
from repro.geometry.solidangle import FULL_SPHERE
from repro.geometry.vec import PointLike

#: The 6 cube faces: (forward axis, sign, u axis, v axis).
_FACES: Tuple[Tuple[int, float, int, int], ...] = (
    (0, +1.0, 1, 2),    # +x: u = y, v = z
    (0, -1.0, 1, 2),    # -x
    (1, +1.0, 0, 2),    # +y: u = x, v = z
    (1, -1.0, 0, 2),    # -y
    (2, +1.0, 0, 1),    # +z: u = x, v = y
    (2, -1.0, 0, 1),    # -z
)

#: Item-buffer value for "no object".
EMPTY = -1


class CubeMapRasterizer:
    """Rasterizes triangle meshes into a 6-face cube-map item buffer.

    Parameters
    ----------
    meshes:
        One mesh per object.
    object_ids:
        Object id per mesh (defaults to ``0..n-1``).
    resolution:
        Pixels per cube-face edge.
    """

    def __init__(self, meshes: Sequence[TriangleMesh],
                 object_ids: Optional[Sequence[int]] = None,
                 resolution: int = 32) -> None:
        if not meshes:
            raise VisibilityError("need at least one mesh")
        if resolution < 1:
            raise VisibilityError(f"resolution must be >= 1: {resolution}")
        if object_ids is None:
            object_ids = list(range(len(meshes)))
        if len(object_ids) != len(meshes):
            raise VisibilityError("object_ids length mismatch")
        self.object_ids = list(object_ids)
        self.resolution = resolution
        self.solid_angles = cube_map_solid_angles(resolution)[
            :resolution * resolution]
        packed: List[np.ndarray] = []
        owners: List[int] = []
        for row, mesh in enumerate(meshes):
            if mesh.num_faces == 0:
                continue
            packed.append(mesh.vertices[mesh.faces])
            owners.extend([row] * mesh.num_faces)
        if not packed:
            raise VisibilityError("all meshes are empty")
        self.triangles = np.concatenate(packed, axis=0)
        self.owners = np.asarray(owners, dtype=np.int64)

    # -- rendering ------------------------------------------------------------

    def render_item_buffer(self, viewpoint: PointLike) -> np.ndarray:
        """Item buffers for all 6 faces, shape ``(6, res, res)``.

        Each pixel holds the owner *row* of the nearest triangle (or
        ``EMPTY``).  Depth is the forward-axis distance (standard
        perspective z), ties broken by triangle order.
        """
        viewpoint = np.asarray(viewpoint, dtype=np.float64)
        buffers = np.full((6, self.resolution, self.resolution), EMPTY,
                          dtype=np.int64)
        for face_index, face in enumerate(_FACES):
            self._render_face(viewpoint, face, buffers[face_index])
        return buffers

    def _render_face(self, viewpoint: np.ndarray,
                     face: Tuple[int, float, int, int],
                     buffer: np.ndarray) -> None:
        axis, sign, u_axis, v_axis = face
        res = self.resolution
        # Camera space: w = signed distance along the face axis;
        # u, v = lateral coordinates divided by w land in [-1, 1].
        tri = self.triangles - viewpoint
        w = sign * tri[:, :, axis]                       # (m, 3)
        near = 1e-9
        # Cull triangles entirely behind the face plane.
        visible = (w > near).any(axis=1)
        if not visible.any():
            return
        zbuffer = np.full((res, res), np.inf)
        idx = np.nonzero(visible)[0]
        for ti in idx:
            self._raster_triangle(tri[ti], w[ti], u_axis, v_axis,
                                  self.owners[ti], buffer, zbuffer)

    def _raster_triangle(self, tri: np.ndarray, w: np.ndarray,
                         u_axis: int, v_axis: int, owner: int,
                         buffer: np.ndarray, zbuffer: np.ndarray) -> None:
        """Rasterize one camera-space triangle onto one face."""
        near = 1e-9
        if (w <= near).any():
            # Crude near-plane handling: clamp (sufficient for DoV
            # statistics; a production renderer would clip).
            w = np.maximum(w, near)
        u = tri[:, u_axis] / w
        v = tri[:, v_axis] / w
        res = self.resolution

        # Pixel-space bounding box of the projected triangle.
        def to_pixel(coord: np.ndarray) -> np.ndarray:
            return (coord + 1.0) * 0.5 * res - 0.5

        pu, pv = to_pixel(u), to_pixel(v)
        lo_u = max(int(np.floor(pu.min())), 0)
        hi_u = min(int(np.ceil(pu.max())), res - 1)
        lo_v = max(int(np.floor(pv.min())), 0)
        hi_v = min(int(np.ceil(pv.max())), res - 1)
        if lo_u > hi_u or lo_v > hi_v:
            return

        us, vs = np.meshgrid(np.arange(lo_u, hi_u + 1),
                             np.arange(lo_v, hi_v + 1), indexing="ij")
        # Pixel centers back in face coordinates.
        cu = (us + 0.5) / res * 2.0 - 1.0
        cv = (vs + 0.5) / res * 2.0 - 1.0

        # 2D barycentric test in (u, v) projection space.
        x0, y0 = u[0], v[0]
        x1, y1 = u[1], v[1]
        x2, y2 = u[2], v[2]
        denom = (y1 - y2) * (x0 - x2) + (x2 - x1) * (y0 - y2)
        if abs(denom) < 1e-15:
            return
        b0 = ((y1 - y2) * (cu - x2) + (x2 - x1) * (cv - y2)) / denom
        b1 = ((y2 - y0) * (cu - x2) + (x0 - x2) * (cv - y2)) / denom
        b2 = 1.0 - b0 - b1
        eps = -1e-9
        inside = (b0 >= eps) & (b1 >= eps) & (b2 >= eps)
        if not inside.any():
            return

        # Perspective-correct depth: interpolate 1/w linearly in screen
        # space.
        inv_w = b0 / w[0] + b1 / w[1] + b2 / w[2]
        with np.errstate(divide="ignore"):
            depth = 1.0 / inv_w
        window_z = zbuffer[lo_u:hi_u + 1, lo_v:hi_v + 1]
        window_items = buffer[lo_u:hi_u + 1, lo_v:hi_v + 1]
        closer = inside & (depth < window_z) & (depth > 0)
        window_z[closer] = depth[closer]
        window_items[closer] = owner

    # -- DoV ------------------------------------------------------------

    def dov_from_viewpoint(self, viewpoint: PointLike) -> Dict[int, float]:
        """Item-buffer DoV: object id -> covered solid angle / 4*pi."""
        buffers = self.render_item_buffer(viewpoint)
        result: Dict[int, float] = {}
        omega = self.solid_angles.reshape(self.resolution, self.resolution)
        sums = np.zeros(len(self.object_ids))
        for face in range(6):
            items = buffers[face]
            hit = items >= 0
            if not hit.any():
                continue
            np.add.at(sums, items[hit], omega[hit])
        for row in np.nonzero(sums)[0]:
            result[self.object_ids[row]] = float(
                min(sums[row] / FULL_SPHERE, 1.0))
        return result
