#!/usr/bin/env python
"""Quickstart: build an HDoV-tree over a small synthetic city and run
visibility queries at different DoV thresholds.

Walks the paper's whole preprocessing pipeline (Section 5.1) in a few
lines: city generation, R-tree construction, internal-LoD generation,
per-cell DoV precomputation, V-page layout — then queries the tree with
the Figure-3 traversal and shows how the threshold ``eta`` trades detail
for I/O.

Run:  python examples/quickstart.py
"""

from repro import (CellGrid, CityParams, HDoVConfig, HDoVSearch,
                   build_environment, generate_city)

def main() -> None:
    # 1. A synthetic city: buildings (the occluders) plus dense organic
    #    "bunny" models, each with a multi-resolution LoD chain.
    city = CityParams(blocks_x=6, blocks_y=6, seed=42,
                      bunnies_per_block=4, building_fraction=0.45)
    scene = generate_city(city)
    print(f"scene: {len(scene)} objects, "
          f"{scene.total_polygons():,} polygons, "
          f"{scene.total_bytes() / 2**20:.1f} MB of model data")

    # 2. Partition the viewpoint space into cells and run the full
    #    preprocessing pipeline (tree, LoDs, DoV, storage scheme).
    grid = CellGrid.covering(scene.bounds(), cell_size=100.0)
    config = HDoVConfig(dov_resolution=16, schemes=("indexed-vertical",))
    env = build_environment(scene, grid, config)
    print(f"HDoV-tree: {env.node_store.num_nodes} nodes, "
          f"height {env.tree.height}, {grid.num_cells} viewing cells")

    # 3. Query from a street viewpoint at several thresholds.
    search = HDoVSearch(env)
    viewpoint = (city.pitch * 2, city.pitch * 3, 1.7)   # street corner
    print(f"\nvisibility query at {viewpoint}:")
    print(f"{'eta':>8}  {'objects':>7}  {'internal LoDs':>13}  "
          f"{'polygons':>8}  {'sim. ms':>8}")
    for eta in (0.0, 0.001, 0.004, 0.016, 0.064):
        env.reset_stats()
        search.scheme.current_cell = None    # cold query
        result = search.query_point(viewpoint, eta)
        print(f"{eta:>8g}  {len(result.objects):>7}  "
              f"{len(result.internals):>13}  "
              f"{result.total_polygons:>8,}  "
              f"{env.total_simulated_ms():>8.1f}")

    print("\nLarger eta => more branches terminate at coarse internal "
          "LoDs => fewer objects fetched, less I/O.")


if __name__ == "__main__":
    main()
