#!/usr/bin/env python
"""Scalability: visibility-query cost vs dataset size (Figure 9).

Builds the 400 MB -> 1.6 GB dataset series (object counts scale 1x-4x),
runs the same random street-viewpoint queries against each, and prints
how the traversal-only cost grows — the paper's point being that it
barely grows at all, because a visibility query touches only the
visible subtree, not the whole database.

Run:  python examples/scalability.py   (takes a minute or two)
"""

from repro.experiments.figure9_scalability import run_figure9
from repro.scene.datasets import DATASET_SERIES


def main() -> None:
    result = run_figure9(DATASET_SERIES, num_queries=30,
                         dov_resolution=16, cell_size=120.0)
    print(result.format_table())
    growth_objects = result.num_objects[-1] / result.num_objects[0]
    growth_time = result.search_ms[-1] / max(result.search_ms[0], 1e-9)
    growth_io = result.ios[-1] / max(result.ios[0], 1e-9)
    print(f"\nobjects grew {growth_objects:.1f}x; traversal time grew "
          f"{growth_time:.2f}x and I/O {growth_io:.2f}x.")
    print("Visibility queries scale with the visible set, not the "
          "database size.")


if __name__ == "__main__":
    main()
