#!/usr/bin/env python
"""Interactive-walkthrough comparison: VISUAL vs REVIEW.

Replays the paper's session 1 (a normal walkthrough along the city
streets) on both systems and prints per-system frame statistics plus a
small ASCII frame-time strip chart — the textual equivalent of
Figure 10(a): REVIEW's re-query frames produce tall spikes, while
VISUAL's cell crossings barely show.

Run:  python examples/city_walkthrough.py
"""

from repro import CellGrid, CityParams, HDoVConfig, build_environment, \
    generate_city
from repro.walkthrough import (ReviewWalkthrough, VisualSystem,
                               frame_time_stats, make_session)


def strip_chart(values, width=72, height=8):
    """Render a frame-time series as ASCII rows (top row = max)."""
    step = max(len(values) // width, 1)
    sampled = [max(values[i:i + step]) for i in range(0, len(values), step)]
    peak = max(sampled) or 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = peak * (level - 0.5) / height
        rows.append("".join("#" if v >= threshold else " "
                            for v in sampled))
    rows.append("-" * len(sampled))
    return "\n".join(rows) + f"\npeak = {peak:.0f} ms"


def main() -> None:
    city = CityParams(blocks_x=8, blocks_y=8, seed=3,
                      bunnies_per_block=4, building_fraction=0.45)
    scene = generate_city(city)
    grid = CellGrid.covering(scene.bounds(), cell_size=80.0)
    env = build_environment(scene, grid,
                            HDoVConfig(dov_resolution=16,
                                       schemes=("indexed-vertical",)))
    session = make_session(1, scene.bounds(), num_frames=120,
                           street_pitch=city.pitch)

    visual = VisualSystem(env, eta=0.001)
    visual_report = visual.run(session)
    review = ReviewWalkthrough(env, box_size=400.0)
    review_report = review.run(session)

    for report in (visual_report, review_report):
        stats = frame_time_stats(report.frame_times())
        print(f"\n{report.system} on {report.session}:")
        print(f"  avg frame time : {stats.mean_ms:8.2f} ms")
        print(f"  variance       : {stats.variance:8.2f}")
        print(f"  max frame time : {stats.maximum_ms:8.2f} ms")
        print(f"  avg fidelity   : {report.avg_fidelity():8.3f}")
        print(f"  peak memory    : "
              f"{report.peak_resident_bytes() / 2**20:8.2f} MB")
        print(strip_chart(report.frame_times()))

    v_stats = frame_time_stats(visual_report.frame_times())
    r_stats = frame_time_stats(review_report.frame_times())
    print(f"\nVISUAL is {r_stats.mean_ms / v_stats.mean_ms:.1f}x faster "
          f"on average and {r_stats.variance / v_stats.variance:.1f}x "
          "smoother (variance) at better visual fidelity.")


if __name__ == "__main__":
    main()
