#!/usr/bin/env python
"""Storage-scheme comparison: horizontal vs vertical vs indexed-vertical.

Builds all three V-page layouts of Section 4 over one city, reports
their on-disk sizes (Table 2's comparison), then issues the same
sequence of cell-hopping visibility queries through each scheme and
shows where the I/O goes: the horizontal scheme seeks for every V-page,
the vertical scheme pays O(N_node) per cell flip, and the
indexed-vertical scheme flips in O(N_vnode).

Run:  python examples/storage_schemes.py
"""

from repro import (CellGrid, CityParams, HDoVConfig, HDoVSearch,
                   build_environment, generate_city)
from repro.walkthrough.session import street_viewpoints


def main() -> None:
    city = CityParams(blocks_x=7, blocks_y=7, seed=11,
                      bunnies_per_block=4, building_fraction=0.45)
    scene = generate_city(city)
    grid = CellGrid.covering(scene.bounds(), cell_size=90.0)
    config = HDoVConfig(
        dov_resolution=16,
        schemes=("horizontal", "vertical", "indexed-vertical"))
    env = build_environment(scene, grid, config)

    print(f"{env.node_store.num_nodes} tree nodes, "
          f"{grid.num_cells} cells\n")
    print("Table 2 analogue — storage cost (tree file excluded):")
    for name, scheme in env.schemes.items():
        breakdown = scheme.storage_breakdown()
        print(f"  {name:<18} {breakdown.total_mb:8.2f} MB "
              f"(V-pages {breakdown.vpage_bytes / 2**20:.2f} MB, "
              f"index {breakdown.index_bytes / 2**20:.3f} MB)")

    viewpoints = street_viewpoints(scene.bounds(), city.pitch, 25, seed=1)
    print(f"\n{len(viewpoints)} cold visibility queries "
          "(eta = 0.001) through each scheme:")
    print(f"  {'scheme':<18} {'page reads':>10} {'seeks':>6} "
          f"{'sequential':>10} {'sim. ms':>8}")
    for name in config.schemes:
        search = HDoVSearch(env, name)
        env.reset_stats()
        for point in viewpoints:
            search.scheme.current_cell = None
            search.scheme.reset_io_head()
            search.query_point(point, 0.001)
        light = env.light_stats
        heavy = env.heavy_stats
        print(f"  {name:<18} {light.reads + heavy.reads:>10} "
              f"{light.seeks + heavy.seeks:>6} "
              f"{light.sequential_reads + heavy.sequential_reads:>10} "
              f"{env.total_simulated_ms():>8.1f}")

    print("\nThe horizontal scheme stores a V-page per (node, cell) — "
          "huge and seek-bound.\nThe vertical pair store only visible "
          "nodes' V-pages in DFS order, so a query\nscans them nearly "
          "sequentially; indexed-vertical also flips cells in "
          "O(N_vnode).")


if __name__ == "__main__":
    main()
