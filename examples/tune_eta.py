#!/usr/bin/env python
"""Tuning the DoV threshold: the fidelity/performance trade-off.

The HDoV-tree's headline feature is that one knob — the DoV threshold
``eta`` — trades visual fidelity for speed (Section 3.3).  This example
sweeps ``eta`` over a walkthrough session and prints the frontier:
average frame time, frame-time variance (smoothness), fidelity, and
peak memory, like Table 3 with the fidelity column the paper shows as
screenshots.

Run:  python examples/tune_eta.py
"""

from repro import CellGrid, CityParams, HDoVConfig, build_environment, \
    generate_city
from repro.walkthrough import VisualSystem, frame_time_stats, make_session


def main() -> None:
    city = CityParams(blocks_x=8, blocks_y=8, seed=5,
                      bunnies_per_block=4, building_fraction=0.45)
    scene = generate_city(city)
    grid = CellGrid.covering(scene.bounds(), cell_size=80.0)
    env = build_environment(scene, grid,
                            HDoVConfig(dov_resolution=16,
                                       schemes=("indexed-vertical",)))
    session = make_session(1, scene.bounds(), num_frames=100,
                           street_pitch=city.pitch)

    print(f"{'eta':>8}  {'frame ms':>8}  {'variance':>8}  "
          f"{'fidelity':>8}  {'peak MB':>8}")
    for eta in (0.0, 0.0005, 0.001, 0.002, 0.004, 0.008, 0.016, 0.032):
        system = VisualSystem(env, eta=eta)
        report = system.run(session)
        stats = frame_time_stats(report.frame_times())
        print(f"{eta:>8g}  {stats.mean_ms:>8.2f}  {stats.variance:>8.1f}  "
              f"{report.avg_fidelity():>8.3f}  "
              f"{report.peak_resident_bytes() / 2**20:>8.2f}")

    print("\nPick the largest eta whose fidelity you can accept: frame "
          "time and variance\nfall (smoother, faster walkthrough) while "
          "fidelity degrades only gradually.")


if __name__ == "__main__":
    main()
