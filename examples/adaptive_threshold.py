#!/usr/bin/env python
"""Adaptive DoV threshold: holding a target frame time automatically.

The paper leaves picking ``eta`` to the user ("depending on the users'
needs and the computing power of the machines").  This example closes
the loop: a feedback controller raises ``eta`` (coarser, faster) when
frames run over the target and lowers it (finer) when there is slack —
so the same walkthrough adapts itself to whatever "machine" (here: the
simulated disk + render budget) it runs on.

Run:  python examples/adaptive_threshold.py
"""

from repro import CellGrid, CityParams, HDoVConfig, build_environment, \
    generate_city
from repro.walkthrough import frame_time_stats, make_session
from repro.walkthrough.adaptive import AdaptiveVisualSystem, EtaController


def main() -> None:
    city = CityParams(blocks_x=8, blocks_y=8, seed=9,
                      bunnies_per_block=4, building_fraction=0.45)
    scene = generate_city(city)
    grid = CellGrid.covering(scene.bounds(), cell_size=80.0)
    env = build_environment(scene, grid,
                            HDoVConfig(dov_resolution=16,
                                       schemes=("indexed-vertical",)))
    session = make_session(1, scene.bounds(), num_frames=120,
                           street_pitch=city.pitch)

    print(f"{'target ms':>9}  {'mean ms':>8}  {'variance':>9}  "
          f"{'final eta':>9}  {'eta range':>19}")
    for target in (40.0, 20.0, 10.0):
        controller = EtaController(target_ms=target, eta_max=0.1)
        system = AdaptiveVisualSystem(env, controller, initial_eta=0.001)
        report = system.run(session)
        stats = frame_time_stats(report.frame_times())
        lo, hi = min(system.eta_trace), max(system.eta_trace)
        print(f"{target:>9.0f}  {stats.mean_ms:>8.2f}  "
              f"{stats.variance:>9.1f}  {system.eta:>9.5f}  "
              f"[{lo:.5f}, {hi:.5f}]")

    print("\nTighter targets drive eta upward (coarser internal LoDs, "
          "fewer fetches);\nloose targets let it settle near fine "
          "detail.")


if __name__ == "__main__":
    main()
