#!/usr/bin/env python
"""Frustum-prioritized traversal — the paper's future work, running.

The HDoV-tree stores MBRs the paper's prototype never exploits: "regions
that are closer to the current view frustum can be traversed first,
while regions that are outside the view frustum can be delayed."  This
example runs the two-phase prioritized search and shows the
response-time win: the viewer's screen is complete after phase 1, while
phase 2 (everything behind and beside the viewer) finishes in the
background.

Run:  python examples/prioritized_response.py
"""

import numpy as np

from repro import (Camera, CellGrid, CityParams, HDoVConfig,
                   build_environment, generate_city)
from repro.core.priority import PrioritizedSearch


def main() -> None:
    city = CityParams(blocks_x=7, blocks_y=7, seed=21,
                      bunnies_per_block=4, building_fraction=0.45)
    scene = generate_city(city)
    grid = CellGrid.covering(scene.bounds(), cell_size=90.0)
    env = build_environment(scene, grid,
                            HDoVConfig(dov_resolution=16,
                                       schemes=("indexed-vertical",)))
    search = PrioritizedSearch(env)

    position = (city.pitch * 3, city.pitch * 3, 1.7)
    print(f"{'view dir':>10}  {'phase-1 ms':>10}  {'total ms':>8}  "
          f"{'phase-1 results':>15}  {'total':>5}  {'speedup':>7}")
    for label, direction in (("+x", (1, 0, 0)), ("+y", (0, 1, 0)),
                             ("diag", (1, 1, 0)), ("-x", (-1, 0, 0))):
        camera = Camera(position=position,
                        direction=np.asarray(direction, float)
                        / np.linalg.norm(direction),
                        up=(0, 0, 1), fov_deg=70.0, far=5000.0)
        search._search.scheme.current_cell = None
        env.reset_stats()
        result = search.query(camera, eta=0.001)
        print(f"{label:>10}  {result.first_phase_ms:>10.1f}  "
              f"{result.total_ms:>8.1f}  "
              f"{result.in_frustum.num_results:>15}  "
              f"{result.completed.num_results:>5}  "
              f"{result.speedup:>7.2f}x")

    print("\nPhase 1 delivers the on-screen objects first; the answer "
          "set is identical to the\nplain traversal's, so turning the "
          "head needs no new database query.")


if __name__ == "__main__":
    main()
