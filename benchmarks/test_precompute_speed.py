"""Bench: precompute pipeline — seed serial vs batched vs parallel.

Times the three precompute configurations on the SMALL scene and emits
``BENCH_precompute.json`` with rays/sec, cells/sec and the speedups over
the seed per-viewpoint path.  All three runs must stay bit-identical
(the determinism contract), so the bench doubles as an end-to-end parity
check at benchmark scale.
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments.config import SMALL
from repro.geometry.aabb import AABB
from repro.scene.city import generate_city
from repro.visibility.cells import CellGrid
from repro.visibility.dov import CellVisibility, VisibilityTable
from repro.visibility.persist import visibility_digest
from repro.visibility.precompute import precompute_visibility
from repro.visibility.raycast import RayCastDoVEstimator

RESOLUTION = 8
SAMPLES = 16
OUTPUT = "BENCH_precompute.json"


def build_inputs():
    scene = generate_city(SMALL.city)
    bounds = scene.bounds()
    grid = CellGrid.covering(AABB(bounds.lo, bounds.hi), SMALL.cell_size)
    return scene, grid


def seed_serial(scene, grid):
    """The seed implementation: one estimator call per viewpoint, merged
    through Python dicts (what precompute_visibility did before the
    batched kernel)."""
    estimator = RayCastDoVEstimator(scene.packed_mbrs(),
                                    object_ids=scene.object_ids(),
                                    resolution=RESOLUTION)
    table = VisibilityTable(grid.num_cells)
    for cell_id in grid.cell_ids():
        merged = {}
        for viewpoint in grid.sample_viewpoints(cell_id, samples=SAMPLES):
            for oid, value in estimator.dov_from_viewpoint(
                    viewpoint).items():
                if value > merged.get(oid, 0.0):
                    merged[oid] = value
        table.put(CellVisibility(cell_id, dov=merged))
    return table


def timed(fn):
    start = time.perf_counter()
    table = fn()
    return table, time.perf_counter() - start


def test_precompute_speed(capsys):
    scene, grid = build_inputs()
    num_rays = 6 * RESOLUTION ** 2
    total_rays = grid.num_cells * SAMPLES * num_rays

    seed_table, seed_s = timed(lambda: seed_serial(scene, grid))
    batched_table, batched_s = timed(lambda: precompute_visibility(
        scene, grid, resolution=RESOLUTION, samples_per_cell=SAMPLES))
    parallel_table, parallel_s = timed(lambda: precompute_visibility(
        scene, grid, resolution=RESOLUTION, samples_per_cell=SAMPLES,
        workers=2))

    digest = visibility_digest(seed_table)
    assert visibility_digest(batched_table) == digest
    assert visibility_digest(parallel_table) == digest

    def row(elapsed):
        return {"seconds": round(elapsed, 4),
                "cells_per_s": round(grid.num_cells / elapsed, 1),
                "rays_per_s": round(total_rays / elapsed, 0)}

    report = {
        "scale": "small",
        "resolution": RESOLUTION,
        "samples_per_cell": SAMPLES,
        "cells": grid.num_cells,
        "rays_total": total_rays,
        "cpu_count": os.cpu_count(),
        "seed_serial": row(seed_s),
        "batched": row(batched_s),
        "batched_workers2": row(parallel_s),
        "speedup_batched": round(seed_s / batched_s, 2),
        "speedup_batched_workers2": round(seed_s / parallel_s, 2),
    }
    with open(OUTPUT, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with capsys.disabled():
        print()
        print(json.dumps(report, indent=2, sort_keys=True))

    # Acceptance bar: on a single-core box (this CI container) both the
    # batched and batched+workers configurations must clear 1.5x over
    # the seed path — parallelism cannot add throughput there, only the
    # batching and the L2-chunked kernel can.  With >= 4 cores the
    # parallel configuration must reach the full 3x.
    assert report["speedup_batched"] >= 1.5
    assert report["speedup_batched_workers2"] >= 1.5
    if report["cpu_count"] >= 4:
        assert report["speedup_batched_workers2"] >= 3.0
