"""Bench: Figure 10 — per-frame time, VISUAL vs REVIEW and eta vs eta.

Prints summary statistics of both panels plus a spike profile (the
paper's "choppiness" claim: REVIEW's query frames stall much longer),
and times a full VISUAL session replay.
"""

from repro.experiments.config import MEDIUM
from repro.experiments.figure10_frametime import run_figure10a, run_figure10b
from repro.walkthrough.session import make_session
from repro.walkthrough.visual import VisualSystem


def test_figure10a_report(benchmark, medium_env, capsys):
    result = benchmark.pedantic(lambda: run_figure10a(MEDIUM, eta=0.001),
                                rounds=1, iterations=1)
    visual, review = result.series
    with capsys.disabled():
        print()
        print(result.format_table())
        spikes_v = sorted((f.frame_ms for f in visual.report.frames),
                          reverse=True)[:5]
        spikes_r = sorted((f.frame_ms for f in review.report.frames),
                          reverse=True)[:5]
        print(f"tallest VISUAL spikes (ms): "
              f"{[round(s) for s in spikes_v]}")
        print(f"tallest REVIEW spikes (ms): "
              f"{[round(s) for s in spikes_r]}")
    # Paper's claims: REVIEW slower and choppier at comparable fidelity.
    assert visual.stats.mean_ms < review.stats.mean_ms
    assert visual.stats.variance < review.stats.variance
    assert visual.report.avg_fidelity() > review.report.avg_fidelity()


def test_figure10b_report(benchmark, medium_env, capsys):
    # The paper compares 0.001 vs 0.0003 on its ~1.6 GB environment; our
    # city is ~25x smaller, which shifts object DoVs (and hence the
    # useful eta band) upward by roughly that scale's square root — the
    # equivalent pair here is 0.008 vs 0.0003 (see EXPERIMENTS.md).
    result = benchmark.pedantic(
        lambda: run_figure10b(MEDIUM, eta_fast=0.008, eta_fine=0.0003),
        rounds=1, iterations=1)
    fast, fine = result.series
    with capsys.disabled():
        print()
        print(result.format_table())
    # The larger threshold gives a faster, smoother walkthrough (the
    # paper reports up to 20% faster).
    assert fast.stats.mean_ms < fine.stats.mean_ms
    assert fast.stats.variance < fine.stats.variance


def test_visual_session_wallclock(benchmark, medium_env):
    env = medium_env
    session = make_session(1, env.scene.bounds(), num_frames=50,
                           street_pitch=MEDIUM.city.pitch)

    def replay():
        system = VisualSystem(env, eta=0.001, evaluate_fidelity=False)
        return system.run(session)

    report = benchmark(replay)
    assert len(report.frames) == 50
