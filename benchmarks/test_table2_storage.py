"""Bench: Table 2 — storage space of the three schemes.

Prints the regenerated table (paper: horizontal 4 GB vs vertical 267 MB
vs indexed-vertical 152.8 MB; ~20x ratio) and times a scheme layout
build over the precomputed V-page data.
"""

from repro.experiments.config import MEDIUM
from repro.experiments.table2_storage import ALL_SCHEMES, run_table2


def test_table2_report(benchmark, medium_env_all_schemes, capsys):
    result = benchmark.pedantic(lambda: run_table2(MEDIUM), rounds=1,
                                iterations=1)
    with capsys.disabled():
        print()
        print(result.format_table())
    sizes = {name: b.total_bytes for name, b in result.breakdowns.items()}
    assert sizes["horizontal"] > sizes["vertical"] >= \
        sizes["indexed-vertical"]


def test_scheme_build_time(benchmark, medium_env_all_schemes):
    """Time laying out the indexed-vertical scheme from V-page data."""
    env = medium_env_all_schemes
    from repro.core.schemes.indexed_vertical import IndexedVerticalScheme
    from repro.storage.disk import DiskModel, IOStats
    from repro.storage.pagedfile import PagedFile

    def build():
        stats = IOStats()
        disk = DiskModel()
        scheme = IndexedVerticalScheme(
            PagedFile("v", disk=disk, stats=stats),
            PagedFile("i", disk=disk, stats=stats))
        scheme.build(env.node_store.num_nodes, env.cell_vpages)
        return scheme

    scheme = benchmark(build)
    assert scheme.storage_breakdown().total_bytes > 0
