"""Bench: metric deltas as first-class benchmark assertions.

The observability registry mirrors every IOStats charge, search
decision, and buffer-pool event.  These benches demonstrate (and
protect) the intended benchmark idiom: snapshot the default registry,
run the workload, and assert on the delta — no environment plumbing
required.  The timings keep the instrumentation overhead itself under
watch: the counters ride the traversal hot path.
"""

import pytest

from repro.core.search import HDoVSearch
from repro.experiments.config import MEDIUM
from repro.obs.metrics import get_registry
from repro.storage.buffer import BufferPool
from repro.walkthrough.session import street_viewpoints


def query_points(env, count=8, seed=11):
    return street_viewpoints(env.scene.bounds(), MEDIUM.city.pitch,
                             count, seed=seed)


def test_search_counters_match_result_fields(benchmark, medium_env):
    """Registry deltas for one batch of queries equal the sums of the
    per-query SearchResult fields exactly."""
    env = medium_env
    search = HDoVSearch(env, "indexed-vertical")
    points = query_points(env)
    reg = get_registry()

    def run_batch():
        snap = reg.snapshot()
        totals = {"nodes_read": 0, "vpages_read": 0, "pruned": 0,
                  "terminated": 0, "recursed": 0, "results": 0}
        for point in points:
            search.scheme.current_cell = None
            result = search.query_point(point, 0.004)
            totals["nodes_read"] += result.nodes_read
            totals["vpages_read"] += result.vpages_read
            totals["pruned"] += result.pruned
            totals["terminated"] += result.terminated
            totals["recursed"] += result.recursed
            totals["results"] += result.num_results
        return reg.delta(snap), totals

    delta, totals = benchmark(run_batch)
    label = '{scheme="indexed-vertical"}'
    assert delta[f"search_queries_total{label}"] == len(points)
    for field in ("nodes_read", "vpages_read", "pruned",
                  "terminated", "recursed"):
        assert delta[f"search_{field}_total{label}"] == totals[field]
    assert delta[f"search_results_count{label}"] == len(points)
    assert delta[f"search_results_sum{label}"] == totals["results"]


def test_pagedfile_deltas_reconcile_with_iostats(benchmark, medium_env):
    """Per-file registry deltas sum to the environment's IOStats deltas
    for the same window — the profile reconciliation, benchmarked."""
    env = medium_env
    search = HDoVSearch(env, "indexed-vertical")
    points = query_points(env, seed=12)
    reg = get_registry()
    scheme = env.scheme("indexed-vertical")
    light_files = [env.node_store.pfile, scheme.vpage_file,
                   scheme.index_file]
    heavy_file = env.object_store.pfile

    def run_batch():
        snap = reg.snapshot()
        io_snap = env.snapshot()
        for point in points:
            search.scheme.current_cell = None
            search.query_point(point, 0.002)
        return reg.delta(snap), env.delta(io_snap)

    delta, (light, heavy) = benchmark(run_batch)

    def reads(pfile):
        return delta.get(
            f'pagedfile_reads_total{{file="{pfile.name}"}}', 0)

    def seeks(pfile):
        return delta.get(
            f'pagedfile_seeks_total{{file="{pfile.name}"}}', 0)

    assert sum(reads(f) for f in light_files) == light.reads
    assert sum(seeks(f) for f in light_files) == light.seeks
    assert reads(heavy_file) == heavy.reads
    assert seeks(heavy_file) == heavy.seeks


def test_bufferpool_delta_assertions(benchmark, medium_env):
    """A cache workload's hit/miss/eviction story is assertable from
    registry deltas alone, without touching pool internals."""
    env = medium_env
    pfile = env.node_store.pfile
    reg = get_registry()
    pool = BufferPool(capacity=8, name="bench-deltas")
    pages = list(range(min(16, pfile.num_pages)))
    label = '{pool="bench-deltas"}'

    def run_workload():
        pool.clear()
        snap = reg.snapshot()
        for pid in pages:            # cold pass: all misses
            pool.get(pfile, pid)
        for pid in pages[-8:]:       # warm pass over the resident tail
            pool.get(pfile, pid)
        return reg.delta(snap)

    delta = benchmark(run_workload)
    assert delta[f"bufferpool_misses_total{label}"] == len(pages)
    assert delta[f"bufferpool_hits_total{label}"] == 8
    assert delta[f"bufferpool_evictions_total{label}"] == len(pages) - 8
    pool.clear()


@pytest.mark.parametrize("eta", [0.0, 0.01])
def test_instrumentation_overhead_bounded(benchmark, medium_env, eta):
    """The counters on the hot path are cached handle bumps; the
    traversal must stay instrument-dominated by I/O, not bookkeeping.
    (The timing itself is the artifact — no pass/fail threshold beyond
    the query completing.)"""
    env = medium_env
    search = HDoVSearch(env, "indexed-vertical", fetch_models=False)
    point = query_points(env, count=1, seed=13)[0]

    def one_query():
        search.scheme.current_cell = None
        return search.query_point(point, eta).nodes_read

    assert benchmark(one_query) > 0
