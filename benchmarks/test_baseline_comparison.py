"""Bench: three-way baseline comparison across motion patterns.

Extends Figure 12 with the LoD-R-tree from the paper's related work and
verifies Section 2's qualitative claims: the LoD-R-tree is competitive
only while the view holds still, and "its performance degenerates
significantly as the user view changes" — the turning session punishes
it while leaving VISUAL and REVIEW unmoved.
"""

from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.experiments.config import MEDIUM


def test_baseline_comparison_report(benchmark, medium_env, capsys):
    result = benchmark.pedantic(
        lambda: run_baseline_comparison(MEDIUM, eta=0.001), rounds=1,
        iterations=1)
    with capsys.disabled():
        print()
        print(result.format_table())
        for system in ("VISUAL", "REVIEW", "LoD-R-tree"):
            print(f"{system} turning penalty (session2/session1): "
                  f"{result.turning_penalty(system):.2f}x")
    for number, per_system in result.rows.items():
        assert per_system["VISUAL"][0] < per_system["REVIEW"][0]
        assert per_system["VISUAL"][1] >= per_system["LoD-R-tree"][1]
    assert result.turning_penalty("LoD-R-tree") > \
        result.turning_penalty("VISUAL")
