"""Bench: incremental object removal vs full environment rebuild.

Not a paper experiment — the paper's environments are static — but the
natural extension a production system needs.  The bench compares the
wall-clock of removing one object incrementally (tree delete + affected
cells' DoV recompute + segment rewrite) against rebuilding the whole
environment from scratch.
"""

import pytest

from repro.core.hdov_tree import HDoVConfig, build_environment
from repro.core.update import affected_cells, remove_object
from repro.scene.city import CityParams, generate_city
from repro.visibility.cells import CellGrid

PARAMS = CityParams(blocks_x=6, blocks_y=6, seed=31, bunnies_per_block=3,
                    building_fraction=0.5, bunny_subdivisions=2)
CONFIG = HDoVConfig(dov_resolution=12, schemes=("indexed-vertical",))


def fresh_environment():
    scene = generate_city(PARAMS)
    grid = CellGrid.covering(scene.bounds(), cell_size=120.0)
    return build_environment(scene, grid, CONFIG)


def most_visible(env):
    counts = {}
    for cell_id in env.grid.cell_ids():
        for oid in env.visibility.cell(cell_id).visible_ids():
            counts[oid] = counts.get(oid, 0) + 1
    return max(counts, key=counts.get)


def test_incremental_removal(benchmark, capsys):
    def run():
        env = fresh_environment()
        oid = most_visible(env)
        touched = remove_object(env, oid)
        return env, touched

    env, touched = benchmark.pedantic(run, rounds=3, iterations=1)
    with capsys.disabled():
        print(f"\nincremental removal touched {len(touched)} of "
              f"{env.grid.num_cells} cells")
    assert touched


def test_full_rebuild(benchmark):
    """The baseline the incremental path competes against."""
    env = benchmark.pedantic(fresh_environment, rounds=3, iterations=1)
    assert env.node_store.num_nodes > 0
