"""Bench: Figure 8 — I/O counts vs eta (indexed-vertical vs naive).

Prints both panels: (a) total I/Os per query, (b) light-weight I/Os,
then times the light-weight traversal alone at two eta extremes.
"""

import pytest

from repro.core.search import HDoVSearch
from repro.experiments.config import MEDIUM
from repro.experiments.figure8_io import run_figure8
from repro.walkthrough.session import street_viewpoints


def test_figure8_report(benchmark, medium_env, capsys):
    result = benchmark.pedantic(lambda: run_figure8(MEDIUM), rounds=1,
                                iterations=1)
    with capsys.disabled():
        print()
        print(result.format_table())
    # eta = 0: the heavy (model) I/O equals naive's exactly — identical
    # object set, identical LoD selection.
    assert result.heavy_ios[0] == pytest.approx(
        result.naive_total - result.naive_light, rel=1e-6)
    # Panel (b): extra internal nodes put HDoV above naive at eta = 0,
    # and the gap closes as eta grows.
    assert result.light_ios[0] > result.naive_light
    assert result.light_ios[-1] < result.light_ios[0]
    # Panel (a): total I/O falls across the sweep.
    assert result.total_ios[-1] < result.total_ios[0]


@pytest.mark.parametrize("eta", [0.0, 0.008])
def test_traversal_wallclock(benchmark, medium_env, eta):
    env = medium_env
    search = HDoVSearch(env, fetch_models=False)
    points = street_viewpoints(env.scene.bounds(), MEDIUM.city.pitch,
                               10, seed=3)

    def run_queries():
        nodes = 0
        for point in points:
            search.scheme.current_cell = None
            nodes += search.query_point(point, eta).nodes_read
        return nodes

    assert benchmark(run_queries) > 0
