"""Bench: Figure 12 — search performance across motion patterns.

Prints both panels (avg search time per query, avg I/Os per query) for
sessions 1-3 and times a REVIEW session replay for comparison against
the VISUAL replay timed in the figure-10 bench.
"""

from repro.experiments.config import MEDIUM
from repro.experiments.figure12_sessions import SESSION_NUMBERS, run_figure12
from repro.walkthrough.session import make_session
from repro.walkthrough.visual import ReviewWalkthrough


def test_figure12_report(benchmark, medium_env, capsys):
    result = benchmark.pedantic(
        lambda: run_figure12(MEDIUM, eta=0.001,
                             review_box=MEDIUM.review_box_comparable),
        rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.format_table())
    for number in SESSION_NUMBERS:
        visual_ms, review_ms = result.search_ms[number]
        visual_io, review_io = result.ios[number]
        assert visual_ms < review_ms
        assert visual_io < review_io


def test_review_session_wallclock(benchmark, medium_env):
    env = medium_env
    session = make_session(1, env.scene.bounds(), num_frames=50,
                           street_pitch=MEDIUM.city.pitch)

    def replay():
        system = ReviewWalkthrough(env, box_size=400.0,
                                   evaluate_fidelity=False)
        return system.run(session)

    report = benchmark(replay)
    assert len(report.frames) == 50
