"""Bench: ablations — design choices the paper fixes but never varies.

* NVO-heuristic on/off (eq. 4);
* Ang-Tan vs Guttman node splitting;
* cell-flip I/O vs tree size (vertical O(N_node) vs indexed-vertical
  O(N_vnode), the Section 4.3 scalability argument).
"""

from repro.experiments.ablations import (run_flip_scaling, run_nvo_ablation,
                                         run_split_ablation)
from repro.experiments.config import MEDIUM


def test_nvo_heuristic_report(benchmark, medium_env, capsys):
    result = benchmark.pedantic(lambda: run_nvo_ablation(MEDIUM, eta=0.008),
                                rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.format_table())
    # Without the eq.-4 gate every small-DoV entry terminates; the gate
    # exists to bound the polygon load of what gets rendered, so the
    # gated variant never renders more.
    assert result.with_heuristic[1] <= result.without_heuristic[1] * 1.05


def test_split_report(benchmark, capsys):
    result = benchmark.pedantic(lambda: run_split_ablation(MEDIUM),
                                rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.format_table())
    assert len(result.rows) == 2


def test_flip_scaling_report(benchmark, capsys):
    result = benchmark.pedantic(lambda: run_flip_scaling(), rounds=1,
                                iterations=1)
    with capsys.disabled():
        print()
        print(result.format_table())
    # Vertical flips grow linearly with N_node; indexed stays flat.
    assert result.vertical_flip_ios[-1] >= 8 * result.vertical_flip_ios[0]
    assert all(io == result.indexed_flip_ios[0]
               for io in result.indexed_flip_ios)


def test_flip_scaling_wallclock(benchmark):
    result = benchmark(lambda: run_flip_scaling(node_counts=(512, 4096)))
    assert result.node_counts == [512, 4096]
