"""Bench: seek-optimal layout rewrite + delta-compressed V-pages.

Runs the four-variant layout measurement (baseline, rewritten,
compressed, compressed+rewritten) over the loop walkthrough on the
SMALL scale and emits ``BENCH_layout.json`` with the machine-free
improvement ratios the regression gate tracks:

* ``back_seek_improvement`` — baseline back seeks / rewritten back
  seeks per scheme (> 1: the rewrite removed backward head travel);
* ``light_bytes_improvement`` — baseline V-page bytes / compressed
  V-page bytes (> 1: the packed stream reads strictly less);
* ``compression_inverse_ratio`` — raw page bytes / encoded stream
  bytes of the packed codec.

The structural guarantees are asserted here too: identical selection
digests across all four variants, exactly equal heavy (model) I/O, and
a byte-identical report across two runs — every number is a pure
function of (scale, session, eta), no wall clock anywhere.
"""

from __future__ import annotations

import json

from repro.obs.layout import run_layout

OUTPUT = "BENCH_layout.json"
SCHEMES = ("vertical", "indexed-vertical")


def test_layout_seeks(capsys):
    first = run_layout(scale="small")
    second = run_layout(scale="small")
    assert json.dumps(first, sort_keys=True) \
        == json.dumps(second, sort_keys=True), \
        "layout report is not byte-deterministic"
    assert first["ok"], {name: sr["checks"]
                         for name, sr in first["schemes"].items()}

    schemes = {}
    for name in SCHEMES:
        scheme_report = first["schemes"][name]
        base = scheme_report["baseline"]
        rewritten = scheme_report["rewritten"]
        compressed = scheme_report["compressed"]

        digests = {scheme_report[v]["selection_digest"]
                   for v in ("baseline", "rewritten", "compressed",
                             "compressed_rewritten")}
        assert len(digests) == 1, f"{name}: selections diverged"
        assert compressed["heavy"]["bytes_read"] \
            == base["heavy"]["bytes_read"], \
            f"{name}: heavy I/O changed under compression"

        back_before = base["light"]["back_seeks"]
        back_after = rewritten["light"]["back_seeks"]
        assert back_after < back_before, \
            f"{name}: rewrite did not cut back seeks"
        light_before = base["light"]["bytes_read"]
        light_after = compressed["light"]["bytes_read"]
        assert light_after < light_before, \
            f"{name}: compression did not cut V-page bytes"

        compression = compressed["compression"]
        schemes[name] = {
            "back_seeks_baseline": back_before,
            "back_seeks_rewritten": back_after,
            # max(1, ...) keeps the ratio finite if a future layout
            # reaches zero back seeks (the best possible outcome).
            "back_seek_improvement": round(
                back_before / max(back_after, 1), 4),
            "light_bytes_baseline": light_before,
            "light_bytes_compressed": light_after,
            "light_bytes_improvement": round(
                light_before / light_after, 4),
            "compression_inverse_ratio": round(
                compression["raw_bytes"] / compression["encoded_bytes"],
                4),
            "delta_records": compression["delta_records"],
            "records": compression["records"],
            "pages_moved": scheme_report["rewritten"]["rewrite"]
                ["pages_moved"],
            "selection_digest": base["selection_digest"],
        }

    report = {
        "scale": first["layout"]["scale"],
        "session": first["layout"]["session"],
        "eta": first["layout"]["eta"],
        "frames": first["layout"]["frames"],
        "cells": first["layout"]["cells"],
        "visibility_digest": first["visibility_digest"],
        "schemes": schemes,
    }
    with open(OUTPUT, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    with capsys.disabled():
        print()
        print("layout rewrite + compression "
              f"({report['session']}, {report['frames']} frames):")
        for name, row in schemes.items():
            print(f"  {name}: back seeks "
                  f"{row['back_seeks_baseline']} -> "
                  f"{row['back_seeks_rewritten']} "
                  f"({row['back_seek_improvement']}x), V-page bytes "
                  f"{row['light_bytes_baseline']} -> "
                  f"{row['light_bytes_compressed']} "
                  f"({row['light_bytes_improvement']}x), stream "
                  f"{row['compression_inverse_ratio']}x smaller")
