"""Bench: traffic latency/shed curve — offered load vs service quality.

Offers the same seeded session stream to the HTTP front-end at two
offered loads (a comfortable one and an overloaded one, same admission
slots) and emits ``BENCH_traffic.json``: p50/p95/p99 *simulated* frame
latency, shed rate, frames served and request counts per load point.

Everything tracked by the regression gate is machine-independent — the
virtual-clock latency percentiles, serve rate (1 - shed rate: the gate
wants higher-is-better) and the served-frame/request counts are pure
functions of (seed, load, config), so a noisy runner can neither fake
a regression nor hide one.  Wall-clock seconds ride along for
information only.

Shape expectation (the PR 6 acceptance bar): pushing the offered load
past the admission capacity must shed sessions — the overloaded point
sheds strictly more than the comfortable one.
"""

from __future__ import annotations

import json
import os
import time

from repro.serving.loadgen import run_traffic

#: Offered loads in sessions per virtual second.  Capacity with 8 slots
#: and ~20 frames of ~5-90 simulated ms each is well under 200/s, so
#: the second point overloads while the first stays comfortable.
ARRIVAL_RATES = (25.0, 200.0)
SESSIONS = 100
FRAMES = 20
MAX_ACTIVE = 8
SEED = 0
OUTPUT = "BENCH_traffic.json"


def test_traffic_curve(capsys):
    curve = {}
    for rate in ARRIVAL_RATES:
        start = time.perf_counter()
        report = run_traffic(sessions=SESSIONS, seed=SEED, frames=FRAMES,
                             arrival_rate=rate, max_active=MAX_ACTIVE)
        elapsed = time.perf_counter() - start
        det = report["deterministic"]
        assert det["requests"]["unexpected"] == {}
        assert det["sessions"]["completed"] == det["sessions"]["admitted"]

        latency = det["sim_frame_ms"]
        curve[f"{rate:g}"] = {
            "offered": det["sessions"]["offered"],
            "admitted": det["sessions"]["admitted"],
            "shed": det["sessions"]["shed"],
            "shed_rate": round(det["sessions"]["shed_rate"], 4),
            "serve_rate": round(det["sessions"]["serve_rate"], 4),
            "frames": det["frames"]["served"],
            "requests": det["requests"]["total"],
            "sim_frame_ms_p50": round(latency["p50"], 4),
            "sim_frame_ms_p95": round(latency["p95"], 4),
            "sim_frame_ms_p99": round(latency["p99"], 4),
            "wall_seconds": round(elapsed, 4),
        }

    report = {
        "scale": "small",
        "seed": SEED,
        "sessions_offered": SESSIONS,
        "frames_per_session": FRAMES,
        "max_active": MAX_ACTIVE,
        "cpu_count": os.cpu_count(),
        "loads": curve,
    }
    with open(OUTPUT, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with capsys.disabled():
        print()
        print(json.dumps(report, indent=2, sort_keys=True))

    # Overload must shed: admission control, not silent queueing.
    low, high = (curve[f"{rate:g}"] for rate in ARRIVAL_RATES)
    assert high["shed"] > low["shed"]
    assert high["serve_rate"] < low["serve_rate"]
