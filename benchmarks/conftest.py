"""Benchmark fixtures.

The MEDIUM environment takes ~30 s to build on one core, so it is built
once per benchmark session and shared by every bench.  Benchmarks both
*time* the operations (pytest-benchmark) and *print* the regenerated
paper tables/series so ``bench_output.txt`` carries the reproduction
numbers alongside the timings.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import MEDIUM, build_experiment_environment

ALL_SCHEMES = ("horizontal", "vertical", "indexed-vertical")


@pytest.fixture(scope="session")
def medium_scale():
    return MEDIUM


@pytest.fixture(scope="session")
def medium_env(medium_scale):
    """Environment with the default (indexed-vertical) scheme."""
    return build_experiment_environment(medium_scale)


@pytest.fixture(scope="session")
def medium_env_all_schemes(medium_scale):
    """Environment with all three storage schemes laid out."""
    return build_experiment_environment(medium_scale, schemes=ALL_SCHEMES)
