"""Bench: Table 3 — avg frame time and variance vs eta, plus REVIEW.

Prints the regenerated table.  Paper shape: frame time and variance fall
as eta rises; REVIEW with comparable-fidelity boxes is several times
slower and choppier than any VISUAL configuration.
"""

from repro.experiments.config import MEDIUM
from repro.experiments.table3_frametime import run_table3


def test_table3_report(benchmark, medium_env, capsys):
    result = benchmark.pedantic(lambda: run_table3(MEDIUM), rounds=1,
                                iterations=1)
    with capsys.disabled():
        print()
        print(result.format_table())
    visual_rows = result.visual_rows()
    # Frame time at the largest eta is below the eta = 0 row.
    assert visual_rows[-1].mean_ms < visual_rows[0].mean_ms
    # Variance also falls (the walkthrough gets smoother).
    assert visual_rows[-1].variance < visual_rows[0].variance
    # REVIEW's row dominates every VISUAL row in both columns.
    review = result.review_row()
    assert review is not None
    for row in visual_rows:
        assert review.mean_ms > row.mean_ms
        assert review.variance > row.variance
