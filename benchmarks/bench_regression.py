"""Benchmark regression gate: fail CI when a tracked metric slips.

Compares the freshly produced ``BENCH_*.json`` files against the
committed snapshots in ``baselines/`` and exits non-zero when any
tracked higher-is-better metric regresses by more than
``--max-regression`` (default 15%).

Only machine-independent metrics are tracked: the precompute speedup
*ratios* (both sides of each ratio run on the same box, so the box
cancels out) and the serving curve's *simulated* throughput and hit
rates (pure functions of the configuration).  Raw wall-clock seconds
are deliberately untracked — a noisy runner must not be able to fail
the gate or mask a real regression.

A delta table is written to ``$GITHUB_STEP_SUMMARY`` when set (the CI
job summary), and always to stdout.

Usage::

    python benchmarks/bench_regression.py \
        --baseline-dir baselines --current-dir . [--max-regression 0.15]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Iterator, List, Tuple

#: (file, dotted path into the JSON, human label).  All tracked metrics
#: are higher-is-better; add lower-is-better metrics by tracking their
#: reciprocal ratio instead.
TRACKED: Tuple[Tuple[str, str, str], ...] = (
    ("BENCH_precompute.json", "speedup_batched",
     "precompute: batched speedup over seed"),
    ("BENCH_precompute.json", "speedup_batched_workers2",
     "precompute: batched+2 workers speedup"),
    ("BENCH_serving.json", "sessions.1.sim_frames_per_s",
     "serving: sim frames/s, 1 session"),
    ("BENCH_serving.json", "sessions.8.sim_frames_per_s",
     "serving: sim frames/s, 8 sessions"),
    ("BENCH_serving.json", "sessions.1.pool_hit_rate",
     "serving: pool hit rate, 1 session"),
    ("BENCH_serving.json", "sessions.8.pool_hit_rate",
     "serving: pool hit rate, 8 sessions"),
    # Traffic metrics are virtual-clock deterministic; serve_rate is
    # 1 - shed_rate so that lower shedding reads higher-is-better.
    ("BENCH_traffic.json", "loads.25.serve_rate",
     "traffic: serve rate at 25 sessions/s"),
    ("BENCH_traffic.json", "loads.200.serve_rate",
     "traffic: serve rate at 200 sessions/s"),
    ("BENCH_traffic.json", "loads.25.frames",
     "traffic: frames served at 25 sessions/s"),
    ("BENCH_traffic.json", "loads.200.frames",
     "traffic: frames served at 200 sessions/s"),
    ("BENCH_traffic.json", "loads.25.requests",
     "traffic: requests handled at 25 sessions/s"),
    # Layout metrics are pure functions of (scale, session, eta): the
    # back-seek ratio of the rewrite and the V-page byte ratio of the
    # packed delta codec, both higher-is-better.
    ("BENCH_layout.json", "schemes.vertical.back_seek_improvement",
     "layout: back-seek improvement, vertical"),
    ("BENCH_layout.json",
     "schemes.indexed-vertical.back_seek_improvement",
     "layout: back-seek improvement, indexed-vertical"),
    ("BENCH_layout.json", "schemes.vertical.light_bytes_improvement",
     "layout: V-page byte improvement, vertical"),
    ("BENCH_layout.json",
     "schemes.indexed-vertical.light_bytes_improvement",
     "layout: V-page byte improvement, indexed-vertical"),
    ("BENCH_layout.json",
     "schemes.vertical.compression_inverse_ratio",
     "layout: packed stream compression, vertical"),
    # Replacement/prefetch A/B grid (pool pressure, simulated and
    # deterministic): per-policy hit rates and throughput, plus the
    # heavy-byte ratio of plain LRU over 2Q+prefetch (lower heavy
    # traffic reads higher-is-better).
    ("BENCH_replacement.json", "grid.32.cells.lru/off.pool_hit_rate",
     "replacement: LRU hit rate, 32 sessions"),
    ("BENCH_replacement.json", "grid.32.cells.2q/off.pool_hit_rate",
     "replacement: 2Q hit rate, 32 sessions"),
    ("BENCH_replacement.json", "grid.64.cells.2q/on.pool_hit_rate",
     "replacement: 2Q+prefetch hit rate, 64 sessions"),
    ("BENCH_replacement.json", "grid.32.hit_rate_gain_2q",
     "replacement: 2Q hit-rate gain over LRU, 32 sessions"),
    ("BENCH_replacement.json", "grid.32.heavy_bytes_improvement",
     "replacement: heavy-byte ratio LRU/off over 2Q/on, 32 sessions"),
    ("BENCH_replacement.json", "grid.64.cells.2q/on.sim_frames_per_s",
     "replacement: sim frames/s, 2Q+prefetch, 64 sessions"),
    ("BENCH_replacement.json", "grid.64.cells.2q/on.useful_ratio",
     "replacement: prefetch useful ratio, 2Q, 64 sessions"),
)


def lookup(document: object, dotted: str) -> float:
    node = document
    for part in dotted.split("."):
        node = node[part]  # type: ignore[index]
    return float(node)  # type: ignore[arg-type]


def iter_rows(baseline_dir: str,
              current_dir: str) -> Iterator[Tuple[str, float, float]]:
    cache = {}

    def load(root: str, name: str) -> object:
        path = os.path.join(root, name)
        if path not in cache:
            with open(path) as fh:
                cache[path] = json.load(fh)
        return cache[path]

    for name, dotted, label in TRACKED:
        baseline = lookup(load(baseline_dir, name), dotted)
        current = lookup(load(current_dir, name), dotted)
        yield label, baseline, current


def format_table(rows: List[Tuple[str, float, float, float, bool]],
                 max_regression: float) -> str:
    lines = [
        "| metric | baseline | current | delta | status |",
        "|---|---:|---:|---:|---|",
    ]
    for label, baseline, current, delta, failed in rows:
        status = "regressed" if failed else "ok"
        lines.append(f"| {label} | {baseline:g} | {current:g} "
                     f"| {delta:+.1%} | {status} |")
    lines.append("")
    lines.append(f"Gate: fail when any metric drops more than "
                 f"{max_regression:.0%} below its baseline.")
    return "\n".join(lines)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", default="baselines",
                        help="directory with committed BENCH_*.json "
                             "snapshots (default: baselines)")
    parser.add_argument("--current-dir", default=".",
                        help="directory with freshly produced "
                             "BENCH_*.json files (default: .)")
    parser.add_argument("--max-regression", type=float, default=0.15,
                        help="allowed fractional drop per metric "
                             "(default: 0.15)")
    parser.add_argument("--table-output", default=None, metavar="FILE",
                        help="also write the delta table to FILE "
                             "(uploaded as a CI build artifact)")
    args = parser.parse_args(argv)

    try:
        compared = list(iter_rows(args.baseline_dir, args.current_dir))
    except FileNotFoundError as exc:
        print(f"bench_regression: missing benchmark file: {exc}",
              file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"bench_regression: missing tracked metric: {exc}",
              file=sys.stderr)
        return 2

    rows = []
    failures = 0
    for label, baseline, current in compared:
        delta = (current - baseline) / baseline if baseline else 0.0
        failed = current < baseline * (1.0 - args.max_regression)
        failures += failed
        rows.append((label, baseline, current, delta, failed))

    table = format_table(rows, args.max_regression)
    print(table)
    if args.table_output:
        with open(args.table_output, "w") as fh:
            fh.write(table + "\n")
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write("## Benchmark regression gate\n\n")
            fh.write(table + "\n")

    if failures:
        print(f"bench_regression: {failures} tracked metric(s) "
              f"regressed more than {args.max_regression:.0%}",
              file=sys.stderr)
        return 1
    print("bench_regression: all tracked metrics within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
