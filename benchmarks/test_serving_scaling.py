"""Bench: serving scaling curve — sessions vs throughput and hit rate.

Serves the SMALL scene at 1/2/4/8 concurrent sessions through one
shared buffer pool and emits ``BENCH_serving.json``.  The tracked
numbers are *simulated*, not wall-clock: aggregate frames per simulated
second and the shared-pool hit rate are pure functions of the
configuration, so the regression gate compares them exactly across
machines (a noisy CI runner cannot fake a regression or hide one).
Wall-clock seconds ride along for information only.

Scaling expectation (the PR 5 acceptance bar): the more sessions share
the tree, the hotter its upper levels stay in the pool, so the hit rate
at 8 sessions must exceed the 1-session rate.
"""

from __future__ import annotations

import json
import os
import time

from repro.serving import run_serve

SESSION_COUNTS = (1, 2, 4, 8)
FRAMES = 30
SEED = 7
OUTPUT = "BENCH_serving.json"

#: The replacement/prefetch A/B grid (PR 10).  The pool is deliberately
#: undersized — 28 pages against dozens of sessions re-walking the same
#: three seeded paths — so each session's cell scan floods a plain LRU
#: while 2Q's probationary queue keeps the shared hot set resident.
AB_SESSION_COUNTS = (32, 64)
AB_POLICIES = ("lru", "2q")
AB_FRAMES = 24
AB_POOL_PAGES = 28
AB_OUTPUT = "BENCH_replacement.json"


def test_serving_scaling(capsys):
    curve = {}
    for sessions in SESSION_COUNTS:
        start = time.perf_counter()
        report = run_serve(sessions=sessions, workers=2, seed=SEED,
                           frames=FRAMES, include_frame_times=False)
        elapsed = time.perf_counter() - start
        assert report["outcome"]["completed"] is True
        reconciliation = report["reconciliation"]
        assert reconciliation["light_ios_balanced"] is True
        assert reconciliation["heavy_ios_balanced"] is True

        total_frames = report["outcome"]["frames_served"]
        simulated_ms = sum(entry["frame_ms"]["mean"] * entry["frames"]
                           for entry in report["sessions"])
        pool = report["pool"]
        curve[str(sessions)] = {
            "frames": total_frames,
            "sim_frames_per_s": round(total_frames / simulated_ms * 1000.0,
                                      2),
            "pool_hit_rate": round(pool["hit_rate"], 4),
            "pool_hits": pool["hits"],
            "pool_misses": pool["misses"],
            "wall_seconds": round(elapsed, 4),
        }

    report = {
        "scale": "small",
        "seed": SEED,
        "frames_per_session": FRAMES,
        "cpu_count": os.cpu_count(),
        "sessions": curve,
    }
    with open(OUTPUT, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with capsys.disabled():
        print()
        print(json.dumps(report, indent=2, sort_keys=True))

    # Sharing must pay: the pool serves 8 sessions better than 1.
    assert curve["8"]["pool_hit_rate"] > curve["1"]["pool_hit_rate"]


def _ab_cell(sessions, policy, prefetch):
    """One grid cell: serve under pressure, distill tracked numbers."""
    start = time.perf_counter()
    report = run_serve(sessions=sessions, workers=2, seed=SEED,
                       frames=AB_FRAMES, pool_pages=AB_POOL_PAGES,
                       policy=policy, prefetch=prefetch,
                       include_frame_times=False)
    elapsed = time.perf_counter() - start
    assert report["outcome"]["completed"] is True
    reconciliation = report["reconciliation"]
    assert reconciliation["light_ios_balanced"] is True
    assert reconciliation["heavy_ios_balanced"] is True
    assert reconciliation["pool_balanced"] is True

    total_frames = report["outcome"]["frames_served"]
    simulated_ms = sum(entry["frame_ms"]["mean"] * entry["frames"]
                       for entry in report["sessions"])
    pool = report["pool"]
    cell = {
        "frames": total_frames,
        "sim_frames_per_s": round(total_frames / simulated_ms * 1000.0,
                                  2),
        "pool_hit_rate": round(pool["hit_rate"], 4),
        "pool_hits": pool["hits"],
        "pool_misses": pool["misses"],
        "heavy_bytes_read":
            reconciliation["heavy_environment"]["bytes_read"],
        "wall_seconds": round(elapsed, 4),
    }
    if prefetch:
        stats = pool["prefetch"]
        cell["prefetch_issued"] = stats["issued"]
        cell["prefetch_useful"] = stats["useful"]
        cell["prefetch_wasted"] = stats["wasted"]
        cell["useful_ratio"] = round(report["prefetch"]["useful_ratio"],
                                     4)
    return cell


def test_replacement_ab(capsys):
    """Policy x prefetch grid under pool pressure (PR 10 acceptance).

    At >= 32 sessions on an undersized pool, 2Q's hit rate must be
    strictly above LRU's, and turning prefetch on must strictly reduce
    demand misses for both policies.  Everything written to
    ``BENCH_replacement.json`` is simulated/deterministic except the
    informational ``wall_seconds``.
    """
    grid = {}
    for sessions in AB_SESSION_COUNTS:
        cells = {}
        for policy in AB_POLICIES:
            for prefetch in (False, True):
                label = f"{policy}/{'on' if prefetch else 'off'}"
                cells[label] = _ab_cell(sessions, policy, prefetch)
        # Gates, per session count:
        # 1. scan resistance pays: 2Q strictly beats LRU on hit rate;
        for prefetch_label in ("off", "on"):
            assert (cells[f"2q/{prefetch_label}"]["pool_hit_rate"]
                    > cells[f"lru/{prefetch_label}"]["pool_hit_rate"])
        # 2. speculation pays: strictly fewer demand misses with
        #    prefetch on, for both policies.
        for policy in AB_POLICIES:
            assert (cells[f"{policy}/on"]["pool_misses"]
                    < cells[f"{policy}/off"]["pool_misses"])
        grid[str(sessions)] = {
            "cells": cells,
            # Ratio gates for the regression table (higher is better):
            # bytes saved by 2Q+prefetch over the plain-LRU demand
            # path, and the 2Q hit-rate multiple over LRU.
            "heavy_bytes_improvement": round(
                cells["lru/off"]["heavy_bytes_read"]
                / cells["2q/on"]["heavy_bytes_read"], 4),
            "hit_rate_gain_2q": round(
                cells["2q/off"]["pool_hit_rate"]
                / cells["lru/off"]["pool_hit_rate"], 4),
        }

    report = {
        "scale": "small",
        "seed": SEED,
        "frames_per_session": AB_FRAMES,
        "pool_pages": AB_POOL_PAGES,
        "cpu_count": os.cpu_count(),
        "grid": grid,
    }
    with open(AB_OUTPUT, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with capsys.disabled():
        print()
        print(json.dumps(report, indent=2, sort_keys=True))
