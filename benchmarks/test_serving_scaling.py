"""Bench: serving scaling curve — sessions vs throughput and hit rate.

Serves the SMALL scene at 1/2/4/8 concurrent sessions through one
shared buffer pool and emits ``BENCH_serving.json``.  The tracked
numbers are *simulated*, not wall-clock: aggregate frames per simulated
second and the shared-pool hit rate are pure functions of the
configuration, so the regression gate compares them exactly across
machines (a noisy CI runner cannot fake a regression or hide one).
Wall-clock seconds ride along for information only.

Scaling expectation (the PR 5 acceptance bar): the more sessions share
the tree, the hotter its upper levels stay in the pool, so the hit rate
at 8 sessions must exceed the 1-session rate.
"""

from __future__ import annotations

import json
import os
import time

from repro.serving import run_serve

SESSION_COUNTS = (1, 2, 4, 8)
FRAMES = 30
SEED = 7
OUTPUT = "BENCH_serving.json"


def test_serving_scaling(capsys):
    curve = {}
    for sessions in SESSION_COUNTS:
        start = time.perf_counter()
        report = run_serve(sessions=sessions, workers=2, seed=SEED,
                           frames=FRAMES, include_frame_times=False)
        elapsed = time.perf_counter() - start
        assert report["outcome"]["completed"] is True
        reconciliation = report["reconciliation"]
        assert reconciliation["light_ios_balanced"] is True
        assert reconciliation["heavy_ios_balanced"] is True

        total_frames = report["outcome"]["frames_served"]
        simulated_ms = sum(entry["frame_ms"]["mean"] * entry["frames"]
                           for entry in report["sessions"])
        pool = report["pool"]
        curve[str(sessions)] = {
            "frames": total_frames,
            "sim_frames_per_s": round(total_frames / simulated_ms * 1000.0,
                                      2),
            "pool_hit_rate": round(pool["hit_rate"], 4),
            "pool_hits": pool["hits"],
            "pool_misses": pool["misses"],
            "wall_seconds": round(elapsed, 4),
        }

    report = {
        "scale": "small",
        "seed": SEED,
        "frames_per_session": FRAMES,
        "cpu_count": os.cpu_count(),
        "sessions": curve,
    }
    with open(OUTPUT, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with capsys.disabled():
        print()
        print(json.dumps(report, indent=2, sort_keys=True))

    # Sharing must pay: the pool serves 8 sessions better than 1.
    assert curve["8"]["pool_hit_rate"] > curve["1"]["pool_hit_rate"]
