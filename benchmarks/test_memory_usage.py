"""Bench: Section 5.4's memory comparison (VISUAL 28 MB vs REVIEW 62 MB).

Prints peak/mean resident model bytes over session 1.  Expected shape:
REVIEW's peak is a multiple of VISUAL's (it caches every object its
query box grabbed, visible or not).
"""

from repro.experiments.config import MEDIUM
from repro.experiments.memory_usage import run_memory_comparison


def test_memory_report(benchmark, medium_env, capsys):
    result = benchmark.pedantic(lambda: run_memory_comparison(MEDIUM),
                                rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.format_table())
    assert result.review_peak() > result.visual_peak()
    # The paper's ratio is ~2.2x (62 MB / 28 MB); ours should be at
    # least meaningfully above 1.
    assert result.review_peak() / result.visual_peak() > 1.3
