"""Bench: extension experiments (features the paper defers).

* frustum-prioritized traversal — response-time speedup;
* cell prefetching — warm-hit flips cost zero on crossing frames;
* tree-node cache sweep — what the paper's "no node caching" decision
  costs at each cache size.
"""

from repro.experiments.config import MEDIUM
from repro.experiments.extensions import (run_node_cache_sweep,
                                          run_prefetch_extension,
                                          run_priority_extension)


def test_priority_report(benchmark, medium_env, capsys):
    result = benchmark.pedantic(
        lambda: run_priority_extension(MEDIUM, eta=0.001), rounds=1,
        iterations=1)
    with capsys.disabled():
        print()
        print(result.format_table())
    assert result.avg_first_phase_ms <= result.avg_total_ms
    assert result.response_speedup >= 1.0


def test_prefetch_report(benchmark, medium_env, capsys):
    result = benchmark.pedantic(lambda: run_prefetch_extension(MEDIUM),
                                rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.format_table())
    assert result.hits > 0
    assert result.avg_hit_flip_ms == 0.0


def test_node_cache_report(benchmark, medium_env, capsys):
    result = benchmark.pedantic(lambda: run_node_cache_sweep(MEDIUM),
                                rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.format_table())
    # Bigger caches monotonically reduce node misses.
    assert result.node_ios_per_query == sorted(result.node_ios_per_query,
                                               reverse=True)
