"""Bench: Figure 11 — visual fidelity, quantified.

Prints the fidelity table: original models (reference), REVIEW with
200 m boxes (misses far objects), VISUAL at eta = 0.001 (fidelity loss
"not obvious").  Times the fidelity scoring machinery.
"""

from repro.core.search import HDoVSearch
from repro.experiments.config import MEDIUM
from repro.experiments.figure11_fidelity import run_figure11
from repro.walkthrough.metrics import FidelityMetric


def test_figure11_report(benchmark, medium_env, capsys):
    result = benchmark.pedantic(
        lambda: run_figure11(MEDIUM, eta=0.001, review_box=200.0),
        rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.format_table())
    original, review, visual = result.rows
    assert original.avg_fidelity == 1.0
    # REVIEW's shortsightedness: visible objects missed entirely.
    assert review.avg_missed_objects > 0
    # VISUAL covers everything visible (directly or via internal LoDs).
    assert visual.avg_missed_objects == 0
    assert visual.avg_fidelity > review.avg_fidelity
    # "A threshold of 0.001 can provide good visual fidelity."
    assert visual.avg_fidelity > 0.9


def test_fidelity_scoring_wallclock(benchmark, medium_env):
    env = medium_env
    metric = FidelityMetric(env)
    search = HDoVSearch(env, fetch_models=False)
    busiest = max(env.grid.cell_ids(),
                  key=lambda c: env.visibility.cell(c).num_visible)
    result = search.query_cell(busiest, eta=0.001)
    score = benchmark(lambda: metric.score_hdov(result))
    assert 0.0 <= score <= 1.0
