"""Bench: Figure 7 — search time vs eta for all schemes plus naive.

Prints the regenerated series (simulated ms/query) and times real
wall-clock query latency per scheme at a representative eta.
"""

import pytest

from repro.baselines.naive import NaiveCellList
from repro.core.search import HDoVSearch
from repro.experiments.config import MEDIUM
from repro.experiments.figure7_search_time import SCHEMES, run_figure7
from repro.walkthrough.session import street_viewpoints


def test_figure7_report(benchmark, medium_env_all_schemes, capsys):
    result = benchmark.pedantic(lambda: run_figure7(MEDIUM), rounds=1,
                                iterations=1)
    with capsys.disabled():
        print()
        print(result.format_table())
    for name in SCHEMES:
        series = result.search_ms[name]
        assert series[-1] < series[0]          # falls with eta
    # eta = 0 within 25% of naive ("almost the same").
    assert result.search_ms["indexed-vertical"][0] == pytest.approx(
        result.naive_ms, rel=0.35)
    # Horizontal is the worst scheme throughout.
    for i in range(len(result.etas)):
        assert result.search_ms["horizontal"][i] >= \
            result.search_ms["vertical"][i] - 1e-9


@pytest.mark.parametrize("scheme", SCHEMES)
def test_query_wallclock(benchmark, medium_env_all_schemes, scheme):
    env = medium_env_all_schemes
    search = HDoVSearch(env, scheme)
    points = street_viewpoints(env.scene.bounds(), MEDIUM.city.pitch,
                               10, seed=3)

    def run_queries():
        total = 0
        for point in points:
            search.scheme.current_cell = None
            total += search.query_point(point, 0.001).num_results
        return total

    total = benchmark(run_queries)
    assert total > 0


def test_naive_query_wallclock(benchmark, medium_env_all_schemes):
    env = medium_env_all_schemes
    naive = NaiveCellList(env)
    points = street_viewpoints(env.scene.bounds(), MEDIUM.city.pitch,
                               10, seed=3)

    def run_queries():
        total = 0
        for point in points:
            total += naive.query_point(point).num_results
        return total

    assert benchmark(run_queries) > 0
