"""Bench: Figure 9 — scalability of the visibility query.

Builds the 400 MB..1.6 GB dataset series (object counts scale 1x..4x)
and reports traversal-only cost per query.  Expected shape: near-flat
search time, slowly growing I/O.
"""

from repro.experiments.figure9_scalability import run_figure9
from repro.scene.datasets import DATASET_SERIES


def test_figure9_report(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_figure9(DATASET_SERIES, num_queries=30,
                            dov_resolution=16, cell_size=120.0),
        rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.format_table())
    # Object counts quadruple across the series ...
    assert result.num_objects[-1] > 3 * result.num_objects[0]
    # ... while traversal cost grows far more slowly (sub-linear).
    time_growth = result.search_ms[-1] / max(result.search_ms[0], 1e-9)
    io_growth = result.ios[-1] / max(result.ios[0], 1e-9)
    object_growth = result.num_objects[-1] / result.num_objects[0]
    assert time_growth < object_growth / 1.5
    assert io_growth < object_growth / 1.5


def test_tree_build_scales(benchmark):
    """Time STR bulk loading at the largest dataset's object count."""
    from repro.rtree.bulk import str_bulk_load
    from repro.scene.datasets import DATASET_SERIES
    scene = DATASET_SERIES[0].build()
    items = [(o.mbr, o.object_id) for o in scene]
    tree = benchmark(lambda: str_bulk_load(items))
    assert tree.size == len(items)
